//! Bitmap block allocator.
//!
//! Serves contiguous runs of physical blocks with a *goal* hint, like
//! ext4's multi-block allocator: a file appending near physical block `g`
//! asks for blocks at goal `g` and usually gets the adjacent run, which is
//! what keeps per-file extent counts low and NeSC's trees shallow.

use nesc_extent::Plba;

/// A run of contiguous physical blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First block of the run.
    pub start: Plba,
    /// Number of blocks.
    pub len: u64,
}

impl Run {
    /// A run covering the first `len` blocks of the device — the shape a
    /// mkfs metadata reservation takes. Minting the physical address here
    /// keeps callers out of the `Plba` constructor.
    pub fn prefix(len: u64) -> Run {
        Run {
            start: Plba(0),
            len,
        }
    }
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough free blocks on the device.
    NoSpace {
        /// Blocks requested.
        requested: u64,
        /// Blocks currently free.
        free: u64,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::NoSpace { requested, free } => {
                write!(f, "out of space: requested {requested} blocks, {free} free")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Word-packed bitmap allocator over a fixed pool of blocks.
///
/// # Example
///
/// ```
/// use nesc_fs::BitmapAllocator;
/// let mut a = BitmapAllocator::new(1000);
/// let runs = a.allocate(10, None).unwrap();
/// assert_eq!(runs.iter().map(|r| r.len).sum::<u64>(), 10);
/// assert_eq!(a.free_blocks(), 990);
/// for r in runs { a.free(r); }
/// assert_eq!(a.free_blocks(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct BitmapAllocator {
    words: Vec<u64>,
    capacity: u64,
    free: u64,
    /// Where the next goal-less search starts (next-fit).
    cursor: u64,
}

impl BitmapAllocator {
    /// Creates an allocator over `capacity` blocks, all free. A zero
    /// capacity (a contract violation) is widened to one block.
    pub fn new(capacity: u64) -> Self {
        debug_assert!(capacity > 0, "allocator needs at least one block");
        let capacity = capacity.max(1);
        BitmapAllocator {
            words: vec![0u64; capacity.div_ceil(64) as usize],
            capacity,
            free: capacity,
            cursor: 0,
        }
    }

    /// Total capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free
    }

    fn is_set(&self, b: u64) -> bool {
        self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    fn set(&mut self, b: u64) {
        self.words[(b / 64) as usize] |= 1 << (b % 64);
    }

    fn clear(&mut self, b: u64) {
        self.words[(b / 64) as usize] &= !(1 << (b % 64));
    }

    /// Marks a specific run as allocated (journal replay / format-time
    /// reservations). Out-of-range or already-set blocks (contract
    /// violations: reservations come from the journal we wrote) are
    /// skipped, keeping the free count consistent with the bitmap.
    pub fn reserve(&mut self, run: Run) {
        for b in run.start.0..run.start.0 + run.len {
            debug_assert!(b < self.capacity, "reserve beyond capacity");
            if b >= self.capacity {
                continue;
            }
            debug_assert!(!self.is_set(b), "double reservation of block {b}");
            if !self.is_set(b) {
                self.set(b);
                self.free = self.free.saturating_sub(1);
            }
        }
    }

    /// Allocates `count` blocks, preferring a contiguous run at `goal`.
    /// Returns one or more runs that together cover exactly `count` blocks;
    /// a single run whenever contiguous space exists.
    ///
    /// # Errors
    ///
    /// [`AllocError::NoSpace`] (allocating nothing) if fewer than `count`
    /// blocks are free.
    ///
    /// A zero `count` (a contract violation: the write paths round byte
    /// ranges up to covering blocks) allocates nothing.
    pub fn allocate(&mut self, count: u64, goal: Option<Plba>) -> Result<Vec<Run>, AllocError> {
        debug_assert!(count > 0, "cannot allocate zero blocks");
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.free {
            return Err(AllocError::NoSpace {
                requested: count,
                free: self.free,
            });
        }
        let mut runs = Vec::new();
        let mut remaining = count;
        let mut search_from = goal
            .map(|g| g.0.min(self.capacity - 1))
            .unwrap_or(self.cursor);
        while remaining > 0 {
            let Some(run) = self.find_run(search_from, remaining) else {
                // The free count said there was space but the scan found
                // none — the bitmap and counter are out of sync. Roll the
                // partial allocation back and report exhaustion.
                debug_assert!(false, "free count guarantees space");
                for r in runs.drain(..) {
                    self.free(r);
                }
                return Err(AllocError::NoSpace {
                    requested: count,
                    free: self.free,
                });
            };
            for b in run.start.0..run.start.0 + run.len {
                self.set(b);
            }
            self.free -= run.len;
            remaining -= run.len;
            search_from = run.start.0 + run.len;
            self.cursor = (run.start.0 + run.len) % self.capacity;
            runs.push(run);
        }
        Ok(runs)
    }

    /// Finds the longest free run starting at or (wrapping) after `from`,
    /// capped at `max_len`; prefers the *first* run found (next-fit).
    fn find_run(&self, from: u64, max_len: u64) -> Option<Run> {
        let mut idx = from % self.capacity;
        let mut scanned = 0u64;
        while scanned < self.capacity {
            if !self.is_set(idx) {
                // Extend the run.
                let start = idx;
                let mut len = 0;
                while len < max_len && idx < self.capacity && !self.is_set(idx) {
                    len += 1;
                    idx += 1;
                }
                return Some(Run {
                    start: Plba(start),
                    len,
                });
            }
            idx = (idx + 1) % self.capacity;
            scanned += 1;
            if idx == 0 {
                // Wrapped; continue scanning from the top.
            }
        }
        None
    }

    /// Frees a previously allocated run. Out-of-range or already-free
    /// blocks (contract violations: runs come from the extent maps we
    /// maintain) are skipped, keeping the free count consistent with the
    /// bitmap.
    pub fn free(&mut self, run: Run) {
        for b in run.start.0..run.start.0 + run.len {
            debug_assert!(b < self.capacity, "free beyond capacity");
            if b >= self.capacity {
                continue;
            }
            debug_assert!(self.is_set(b), "double free of block {b}");
            if self.is_set(b) {
                self.clear(b);
                self.free = (self.free + 1).min(self.capacity);
            }
        }
    }

    /// Whether a specific block is allocated.
    pub fn is_allocated(&self, b: Plba) -> bool {
        b.0 < self.capacity && self.is_set(b.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocates_contiguously_when_possible() {
        let mut a = BitmapAllocator::new(100);
        let runs = a.allocate(50, None).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 50);
    }

    #[test]
    fn goal_hint_extends_file() {
        let mut a = BitmapAllocator::new(100);
        let first = a.allocate(10, None).unwrap()[0];
        let next = a
            .allocate(10, Some(Plba(first.start.0 + first.len)))
            .unwrap();
        assert_eq!(next[0].start, Plba(first.start.0 + first.len));
    }

    #[test]
    fn fragmentation_yields_multiple_runs() {
        let mut a = BitmapAllocator::new(30);
        let all = a.allocate(30, None).unwrap();
        assert_eq!(all.len(), 1);
        // Free two disjoint holes.
        a.free(Run {
            start: Plba(5),
            len: 3,
        });
        a.free(Run {
            start: Plba(20),
            len: 4,
        });
        let runs = a.allocate(7, Some(Plba(0))).unwrap();
        assert_eq!(runs.iter().map(|r| r.len).sum::<u64>(), 7);
        assert!(runs.len() >= 2);
    }

    #[test]
    fn no_space_reported() {
        let mut a = BitmapAllocator::new(10);
        a.allocate(10, None).unwrap();
        let err = a.allocate(1, None).unwrap_err();
        assert_eq!(
            err,
            AllocError::NoSpace {
                requested: 1,
                free: 0
            }
        );
        assert!(err.to_string().contains("out of space"));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = BitmapAllocator::new(10);
        let r = a.allocate(2, None).unwrap()[0];
        a.free(r);
        a.free(r);
    }

    #[test]
    fn reserve_marks_blocks() {
        let mut a = BitmapAllocator::new(64);
        a.reserve(Run {
            start: Plba(0),
            len: 8,
        });
        assert!(a.is_allocated(Plba(0)));
        assert!(!a.is_allocated(Plba(8)));
        assert_eq!(a.free_blocks(), 56);
        // Next allocation avoids the reserved region.
        let r = a.allocate(8, Some(Plba(0))).unwrap();
        assert!(r[0].start.0 >= 8);
    }

    proptest! {
        /// Allocate/free in random order: the free count is always
        /// consistent, no block is handed out twice, and everything freed
        /// becomes allocatable again.
        #[test]
        fn prop_alloc_free_consistent(ops in proptest::collection::vec((1u64..20, any::<bool>()), 1..100)) {
            let mut a = BitmapAllocator::new(512);
            let mut held: Vec<Run> = Vec::new();
            let mut owned = std::collections::HashSet::new();
            for &(count, free_one) in &ops {
                if free_one && !held.is_empty() {
                    let r = held.swap_remove(0);
                    for b in r.start.0..r.start.0 + r.len {
                        owned.remove(&b);
                    }
                    a.free(r);
                } else if let Ok(runs) = a.allocate(count, None) {
                    for r in runs {
                        for b in r.start.0..r.start.0 + r.len {
                            prop_assert!(owned.insert(b), "block {} handed out twice", b);
                        }
                        held.push(r);
                    }
                }
                let held_total: u64 = held.iter().map(|r| r.len).sum();
                prop_assert_eq!(a.free_blocks(), 512 - held_total);
            }
        }
    }
}
