//! Block deduplication.
//!
//! The paper leans on hypervisor-level sharing twice (§IV-D): memory
//! deduplication replaces the unified buffer cache, and the PF's BTLB
//! flush exists so "traditional storage optimizations (e.g., block
//! deduplication)" can rewrite mappings safely. This module implements the
//! storage side: scan a set of files, find blocks with identical content,
//! remap duplicates onto one physical copy, and free the rest.
//!
//! Shared physical blocks are reference-counted by the filesystem so
//! unlink/truncate of one sharer never frees a block another file still
//! maps. Deduplicated files must be treated as **read-only** by NeSC VFs
//! (the device has no copy-on-write; the paper's dedup discussion is about
//! read sharing) — the system layer enforces that by convention and the
//! security tests check the read paths.
//!
//! Deduplication is an *offline* optimization pass (as in real systems):
//! it is not journaled, so it must run at a consistent checkpoint; crash
//! recovery replays the journal into the pre-dedup state.

use std::collections::BTreeMap;

use nesc_extent::{ExtentMapping, Plba, Vlba};

use crate::fs::{Filesystem, FsError, Ino};
use crate::io::BlockIo;

/// Outcome of a deduplication pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupReport {
    /// Blocks examined.
    pub scanned_blocks: u64,
    /// Blocks remapped onto an existing identical copy.
    pub deduped_blocks: u64,
    /// Physical blocks returned to the allocator.
    pub freed_blocks: u64,
}

/// 64-bit FNV-1a over a block — fast, deterministic, collision-checked by
/// full comparison before any remap.
fn block_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Filesystem {
    /// Deduplicates the given files in place: after the pass, identical
    /// blocks across (and within) the files share one physical block.
    /// Returns what changed so the hypervisor can rebuild affected VF
    /// trees and flush the device's BTLB.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and stale inodes.
    pub fn dedup(&mut self, io: &mut dyn BlockIo, files: &[Ino]) -> Result<DedupReport, FsError> {
        let mut report = DedupReport::default();
        // hash -> (canonical plba, content)
        let mut seen: BTreeMap<u64, Vec<(Plba, Vec<u8>)>> = BTreeMap::new();
        for &ino in files {
            // Snapshot the mapping; we re-insert block by block.
            let extents: Vec<ExtentMapping> = self.extent_tree(ino)?.iter().copied().collect();
            for e in extents {
                for i in 0..e.len {
                    let v = e.logical.offset(i);
                    let p = e.physical.offset(i);
                    report.scanned_blocks += 1;
                    let data = io.read_block(p)?;
                    let h = block_hash(&data);
                    let bucket = seen.entry(h).or_default();
                    let existing = bucket
                        .iter()
                        .find(|(cp, content)| *cp != p && content == &data)
                        .map(|&(cp, _)| cp);
                    match existing {
                        Some(canonical) => {
                            self.remap_block(ino, v, canonical)?;
                            report.deduped_blocks += 1;
                            if self.release_block(p) {
                                report.freed_blocks += 1;
                            }
                        }
                        None => {
                            if !bucket.iter().any(|&(cp, _)| cp == p) {
                                bucket.push((p, data));
                            }
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// Points file block `v` of `ino` at physical block `canonical`,
    /// bumping the share count.
    fn remap_block(&mut self, ino: Ino, v: Vlba, canonical: Plba) -> Result<(), FsError> {
        self.share_block(canonical);
        let tree = self.extent_tree_mut(ino)?;
        tree.remove_range(v, 1);
        tree.insert(ExtentMapping::new(v, canonical, 1))
            .expect("range was just removed");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_storage::{BlockStore, BLOCK_SIZE};

    fn setup() -> (BlockStore, Filesystem) {
        (BlockStore::new(4096), Filesystem::format(4096))
    }

    fn fill(fs: &mut Filesystem, store: &mut BlockStore, name: &str, pattern: &[u8]) -> Ino {
        let ino = fs.create(name).unwrap();
        fs.write(store, ino, 0, pattern).unwrap();
        ino
    }

    #[test]
    fn identical_files_collapse_to_one_copy() {
        let (mut store, mut fs) = setup();
        let content = vec![0xAB; 8 * BLOCK_SIZE as usize];
        let a = fill(&mut fs, &mut store, "a", &content);
        let b = fill(&mut fs, &mut store, "b", &content);
        let free_before = fs.free_blocks();
        let report = fs.dedup(&mut store, &[a, b]).unwrap();
        // 16 scanned; every block is identical, so one physical copy
        // remains (15 deduped: 7 within file a + 8 of file b).
        assert_eq!(report.scanned_blocks, 16);
        assert_eq!(report.deduped_blocks, 15);
        assert_eq!(fs.free_blocks(), free_before + report.freed_blocks);
        assert!(report.freed_blocks >= 14);
        // Content unchanged.
        assert_eq!(fs.read(&mut store, a, 0, content.len()).unwrap(), content);
        assert_eq!(fs.read(&mut store, b, 0, content.len()).unwrap(), content);
    }

    #[test]
    fn distinct_blocks_untouched() {
        let (mut store, mut fs) = setup();
        let mut content = vec![0u8; 4 * BLOCK_SIZE as usize];
        for (i, chunk) in content.chunks_mut(BLOCK_SIZE as usize).enumerate() {
            chunk.fill(i as u8 + 1);
        }
        let a = fill(&mut fs, &mut store, "a", &content);
        let report = fs.dedup(&mut store, &[a]).unwrap();
        assert_eq!(report.deduped_blocks, 0);
        assert_eq!(report.freed_blocks, 0);
        assert_eq!(fs.read(&mut store, a, 0, content.len()).unwrap(), content);
    }

    #[test]
    fn unlink_of_one_sharer_preserves_the_other() {
        let (mut store, mut fs) = setup();
        let content = vec![0x5C; 4 * BLOCK_SIZE as usize];
        let a = fill(&mut fs, &mut store, "a", &content);
        let b = fill(&mut fs, &mut store, "b", &content);
        fs.dedup(&mut store, &[a, b]).unwrap();
        fs.unlink("a").unwrap();
        // b still reads correctly: the shared blocks were refcounted, not
        // freed.
        assert_eq!(fs.read(&mut store, b, 0, content.len()).unwrap(), content);
        // And unlinking b finally releases them.
        let free_mid = fs.free_blocks();
        fs.unlink("b").unwrap();
        assert!(fs.free_blocks() > free_mid);
    }

    #[test]
    fn truncate_of_sharer_is_safe() {
        let (mut store, mut fs) = setup();
        let content = vec![0x31; 4 * BLOCK_SIZE as usize];
        let a = fill(&mut fs, &mut store, "a", &content);
        let b = fill(&mut fs, &mut store, "b", &content);
        fs.dedup(&mut store, &[a, b]).unwrap();
        fs.truncate(a, 0).unwrap();
        assert_eq!(fs.read(&mut store, b, 0, content.len()).unwrap(), content);
    }

    #[test]
    fn hash_discriminates() {
        let a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        b[63] = 1;
        assert_ne!(block_hash(&a), block_hash(&b));
        assert_eq!(block_hash(&a), block_hash(&a.clone()));
    }

    #[test]
    fn dedup_report_is_deterministic() {
        let run = || {
            let (mut store, mut fs) = setup();
            let content = vec![0x42; 16 * BLOCK_SIZE as usize];
            let a = fill(&mut fs, &mut store, "a", &content);
            let b = fill(&mut fs, &mut store, "b", &content);
            fs.dedup(&mut store, &[a, b]).unwrap()
        };
        assert_eq!(run(), run());
    }
}
