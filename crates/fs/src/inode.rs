//! Inodes.
//!
//! An inode is a size plus an extent tree — the same pairing ext4 keeps,
//! and the part of the filesystem NeSC cares about: "each file is
//! associated with an extent tree (pointed to by the file's inode) that
//! maps file offsets to physical blocks" (paper §IV-B).

use nesc_extent::{ExtentTree, Plba, Vlba};

/// One file's metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Inode {
    size_bytes: u64,
    extents: ExtentTree,
}

impl Inode {
    /// A fresh, empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logical file size in bytes (may exceed allocated space thanks to
    /// lazy allocation, and be smaller than `blocks * 1 KiB` for a final
    /// partial block).
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Sets the logical size (extension or truncation of the *size* only;
    /// block bookkeeping is the filesystem's job).
    pub fn set_size_bytes(&mut self, size: u64) {
        self.size_bytes = size;
    }

    /// The file's offset→block mapping.
    pub fn extents(&self) -> &ExtentTree {
        &self.extents
    }

    /// Mutable access for the filesystem's allocation paths.
    pub fn extents_mut(&mut self) -> &mut ExtentTree {
        &mut self.extents
    }

    /// The physical block backing file block `v`, if allocated.
    pub fn block_at(&self, v: Vlba) -> Option<Plba> {
        self.extents.lookup(v).and_then(|e| e.translate(v))
    }

    /// Number of allocated (non-hole) blocks.
    pub fn allocated_blocks(&self) -> u64 {
        self.extents.mapped_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_extent::ExtentMapping;

    #[test]
    fn new_inode_is_empty() {
        let ino = Inode::new();
        assert_eq!(ino.size_bytes(), 0);
        assert_eq!(ino.allocated_blocks(), 0);
        assert_eq!(ino.block_at(Vlba(0)), None);
    }

    #[test]
    fn block_mapping_via_extents() {
        let mut ino = Inode::new();
        ino.extents_mut()
            .insert(ExtentMapping::new(Vlba(0), Plba(500), 4))
            .unwrap();
        ino.set_size_bytes(4096);
        assert_eq!(ino.block_at(Vlba(3)), Some(Plba(503)));
        assert_eq!(ino.block_at(Vlba(4)), None);
        assert_eq!(ino.allocated_blocks(), 4);
        assert_eq!(ino.size_bytes(), 4096);
    }
}
