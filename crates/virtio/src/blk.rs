//! virtio-blk request encoding.
//!
//! A virtio-blk request is a three-part descriptor chain: a 16-byte header
//! (`type`, reserved, `sector`), the data buffers, and a one-byte status
//! the device writes last. [`BlkRequest::build_chain`] produces the chain a
//! guest driver would publish, and [`BlkRequest::parse_chain`] is the
//! backend-side decode, with real header bytes moving through
//! [`HostMemory`].

use nesc_extent::{validate_sector, GuestFault, Untrusted, Vlba};
use nesc_pcie::{HostAddr, HostMemory};

use crate::queue::Descriptor;

/// Bytes per virtio-blk sector. The wire format always addresses in
/// 512-byte sectors regardless of the backing device's block size.
pub const SECTOR_BYTES: u64 = 512;

/// virtio-blk command type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkRequestType {
    /// Device-to-driver data transfer (`VIRTIO_BLK_T_IN`).
    In,
    /// Driver-to-device data transfer (`VIRTIO_BLK_T_OUT`).
    Out,
    /// Flush volatile caches (`VIRTIO_BLK_T_FLUSH`).
    Flush,
}

impl BlkRequestType {
    fn code(self) -> u32 {
        match self {
            BlkRequestType::In => 0,
            BlkRequestType::Out => 1,
            BlkRequestType::Flush => 4,
        }
    }

    fn from_code(c: u32) -> Option<Self> {
        match c {
            0 => Some(BlkRequestType::In),
            1 => Some(BlkRequestType::Out),
            4 => Some(BlkRequestType::Flush),
            _ => None,
        }
    }
}

/// Completion status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkStatus {
    /// `VIRTIO_BLK_S_OK`
    Ok,
    /// `VIRTIO_BLK_S_IOERR`
    IoErr,
    /// `VIRTIO_BLK_S_UNSUPP`
    Unsupported,
}

impl BlkStatus {
    /// The wire byte.
    pub fn byte(self) -> u8 {
        match self {
            BlkStatus::Ok => 0,
            BlkStatus::IoErr => 1,
            BlkStatus::Unsupported => 2,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(BlkStatus::Ok),
            1 => Some(BlkStatus::IoErr),
            2 => Some(BlkStatus::Unsupported),
            _ => None,
        }
    }
}

/// A decoded virtio-blk request.
///
/// The header a backend decodes lives in guest-writable memory, so the
/// sector and length arrive quarantined in [`Untrusted`]; a backend
/// releases the sector through [`validated_sector`](Self::validated_sector)
/// (or the raw boundary accessors below, which live in this module by
/// design). The buffer addresses stay bare [`HostAddr`]s — DMA targets are
/// policed by the memory model, not the block validators.
// nesc-lint: guest-input
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkRequest {
    /// Command.
    pub rtype: BlkRequestType,
    /// First 512-byte sector (virtio-blk addresses in sectors regardless of
    /// the backing block size). Guest-chosen and unproven until validated.
    pub sector: Untrusted<u64>,
    /// Guest data buffer.
    pub data: HostAddr,
    /// Data length in bytes. Guest-chosen and unproven until validated.
    pub len: Untrusted<u32>,
    /// Where the device writes the status byte.
    pub status: HostAddr,
}

/// Chain-decoding error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The chain did not have header + (data) + status layout.
    BadLayout,
    /// Unknown request type code.
    BadType {
        /// The code found in the header.
        code: u32,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLayout => write!(f, "malformed virtio-blk descriptor chain"),
            ParseError::BadType { code } => write!(f, "unknown virtio-blk type {code}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl BlkRequest {
    /// Builds a request from trusted driver-side values (drivers, tests,
    /// benches), quarantining them exactly as [`parse_chain`](Self::parse_chain)
    /// would.
    pub fn new(
        rtype: BlkRequestType,
        sector: u64,
        data: HostAddr,
        len: u32,
        status: HostAddr,
    ) -> Self {
        BlkRequest {
            rtype,
            sector: Untrusted::new(sector),
            data,
            len: Untrusted::new(len),
            status,
        }
    }

    /// Proves the starting sector against a device capacity, releasing it
    /// from quarantine.
    ///
    /// # Errors
    ///
    /// [`GuestFault::SectorOutOfRange`] if the sector does not fit the
    /// device.
    pub fn validated_sector(&self, capacity_sectors: u64) -> Result<u64, GuestFault> {
        validate_sector(self.sector, capacity_sectors)
    }

    /// The request's starting byte offset in the guest's virtual disk.
    ///
    /// Boundary accessor: the offset is still guest-derived; callers
    /// outside this module should prefer
    /// [`validated_sector`](Self::validated_sector).
    pub fn byte_offset(&self) -> u64 {
        self.sector.into_unchecked() * SECTOR_BYTES
    }

    /// The virtual block containing the request's first sector.
    ///
    /// virtio-blk sectors are guest-disk offsets, so the provenance of the
    /// address is virtual by construction — a backend must still walk the
    /// file's extent map before it can touch physical blocks.
    pub fn start_vlba(&self) -> Vlba {
        Vlba::from_byte_offset(self.byte_offset())
    }

    /// Driver side: writes the 16-byte header into guest memory at
    /// `header_addr` and returns the descriptor chain to publish.
    ///
    /// For `Flush`, `data`/`len` are ignored and the chain is header +
    /// status only.
    pub fn build_chain(&self, mem: &mut HostMemory, header_addr: HostAddr) -> Vec<Descriptor> {
        let mut header = [0u8; 16];
        header[0..4].copy_from_slice(&self.rtype.code().to_le_bytes());
        header[8..16].copy_from_slice(&self.sector.into_unchecked().to_le_bytes());
        mem.write(header_addr, &header);
        let mut chain = vec![Descriptor {
            addr: header_addr,
            len: 16,
            device_writes: false,
        }];
        if self.rtype != BlkRequestType::Flush {
            chain.push(Descriptor {
                addr: self.data,
                len: self.len.into_unchecked(),
                device_writes: self.rtype == BlkRequestType::In,
            });
        }
        chain.push(Descriptor {
            addr: self.status,
            len: 1,
            device_writes: true,
        });
        chain
    }

    /// Backend side: decodes a popped chain back into a request, reading
    /// the header bytes from guest memory.
    ///
    /// # Errors
    ///
    /// [`ParseError`] if the chain layout or type code is invalid.
    // nesc-lint: guest-input
    pub fn parse_chain(
        mem: &HostMemory,
        descriptors: &[Descriptor],
    ) -> Result<BlkRequest, ParseError> {
        let (header, rest) = descriptors.split_first().ok_or(ParseError::BadLayout)?;
        if header.len != 16 || header.device_writes {
            return Err(ParseError::BadLayout);
        }
        let bytes = mem.read_vec(header.addr, 16);
        let code = bytes
            .get(0..4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
            .ok_or(ParseError::BadLayout)?;
        let sector = bytes
            .get(8..16)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or(ParseError::BadLayout)?;
        let rtype = BlkRequestType::from_code(code).ok_or(ParseError::BadType { code })?;
        match (rtype, rest) {
            (BlkRequestType::Flush, [status]) if status.device_writes && status.len == 1 => {
                Ok(BlkRequest {
                    rtype,
                    sector: Untrusted::new(sector),
                    data: 0,
                    len: Untrusted::new(0),
                    status: status.addr,
                })
            }
            (_, [data, status]) if status.device_writes && status.len == 1 => {
                let expect_write = rtype == BlkRequestType::In;
                if data.device_writes != expect_write {
                    return Err(ParseError::BadLayout);
                }
                Ok(BlkRequest {
                    rtype,
                    sector: Untrusted::new(sector),
                    data: data.addr,
                    len: Untrusted::new(data.len),
                    status: status.addr,
                })
            }
            _ => Err(ParseError::BadLayout),
        }
    }

    /// Backend side: writes the completion status byte into guest memory.
    pub fn complete(&self, mem: &mut HostMemory, status: BlkStatus) {
        mem.write(self.status, &[status.byte()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_request_roundtrip() {
        let mut mem = HostMemory::new();
        let req = BlkRequest::new(BlkRequestType::In, 128, 0x4000, 4096, 0x5000);
        let chain = req.build_chain(&mut mem, 0x3000);
        assert_eq!(chain.len(), 3);
        assert!(chain[1].device_writes, "IN data is device-written");
        let parsed = BlkRequest::parse_chain(&mem, &chain).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn out_request_roundtrip() {
        let mut mem = HostMemory::new();
        let req = BlkRequest::new(BlkRequestType::Out, 7, 0x4000, 512, 0x5000);
        let chain = req.build_chain(&mut mem, 0x3000);
        assert!(!chain[1].device_writes, "OUT data is device-read");
        assert_eq!(BlkRequest::parse_chain(&mem, &chain).unwrap(), req);
    }

    #[test]
    fn flush_has_no_data_descriptor() {
        let mut mem = HostMemory::new();
        let req = BlkRequest::new(BlkRequestType::Flush, 0, 0, 0, 0x5000);
        let chain = req.build_chain(&mut mem, 0x3000);
        assert_eq!(chain.len(), 2);
        let parsed = BlkRequest::parse_chain(&mem, &chain).unwrap();
        assert_eq!(parsed.rtype, BlkRequestType::Flush);
    }

    #[test]
    fn status_byte_lands_in_memory() {
        let mut mem = HostMemory::new();
        let req = BlkRequest::new(BlkRequestType::Out, 0, 0x4000, 512, 0x5000);
        req.complete(&mut mem, BlkStatus::IoErr);
        assert_eq!(
            BlkStatus::from_byte(mem.read_vec(0x5000, 1)[0]),
            Some(BlkStatus::IoErr)
        );
    }

    #[test]
    fn sector_maps_to_containing_virtual_block() {
        // Sector 3 is 1536 bytes in: mid-block for 1 KiB blocks.
        let req = BlkRequest::new(BlkRequestType::In, 3, 0, 512, 0);
        assert_eq!(req.byte_offset(), 1536);
        assert_eq!(req.start_vlba(), Vlba(1));
    }

    #[test]
    fn malformed_chains_rejected() {
        let mem = HostMemory::new();
        assert_eq!(
            BlkRequest::parse_chain(&mem, &[]),
            Err(ParseError::BadLayout)
        );
        // Header with the wrong size.
        let bad = [Descriptor {
            addr: 0,
            len: 8,
            device_writes: false,
        }];
        assert_eq!(
            BlkRequest::parse_chain(&mem, &bad),
            Err(ParseError::BadLayout)
        );
    }

    #[test]
    fn unknown_type_rejected() {
        let mut mem = HostMemory::new();
        mem.write_u32(0x3000, 99);
        let chain = [
            Descriptor {
                addr: 0x3000,
                len: 16,
                device_writes: false,
            },
            Descriptor {
                addr: 0x4000,
                len: 512,
                device_writes: false,
            },
            Descriptor {
                addr: 0x5000,
                len: 1,
                device_writes: true,
            },
        ];
        assert_eq!(
            BlkRequest::parse_chain(&mem, &chain),
            Err(ParseError::BadType { code: 99 })
        );
    }
}
