#![warn(missing_docs)]

//! Paravirtualized (virtio-blk style) storage path.
//!
//! virtio is "the de facto standard for virtualizing storage in Linux
//! hypervisors" and the main software baseline NeSC is compared against
//! (paper §II, Fig. 1b): the guest's block driver places requests in a
//! shared ring, *kicks* the host (a vmexit), and the hypervisor's backend
//! thread walks its own filesystem and block layers to serve them.
//!
//! This crate models the data structures of that path:
//!
//! * [`Virtqueue`] — a split virtqueue: descriptor table with chaining, an
//!   avail ring (guest→host) and a used ring (host→guest), with free-slot
//!   accounting like the Linux driver's;
//! * [`BlkRequest`] / [`BlkStatus`] — the virtio-blk command set (IN, OUT,
//!   FLUSH) with the standard three-part descriptor chain: 16-byte header,
//!   data buffers, one status byte.
//!
//! The *timing* of kicks (vmexit), host-stack processing, and completion
//! injection is charged by the `nesc-hypervisor` crate; this crate owns
//! the functional queue mechanics so tests can verify request integrity
//! end to end.

pub mod blk;
pub mod queue;

pub use blk::{BlkRequest, BlkRequestType, BlkStatus};
pub use queue::{Chain, QueueError, UsedElem, Virtqueue};
