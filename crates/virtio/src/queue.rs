//! The split virtqueue.
//!
//! A faithful-but-typed model of the virtio 1.0 split ring: a fixed-size
//! descriptor table whose entries chain via `next`, an avail ring carrying
//! chain heads from driver to device, and a used ring carrying completions
//! back. Descriptors reference guest buffers by host address + length;
//! data itself stays in [`HostMemory`](nesc_pcie::HostMemory).

use std::collections::VecDeque;

use nesc_pcie::HostAddr;

/// One descriptor: a guest buffer and whether the *device* writes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Guest-physical buffer address.
    pub addr: HostAddr,
    /// Buffer length in bytes.
    pub len: u32,
    /// True if the device writes this buffer (read data, status byte).
    pub device_writes: bool,
}

/// A descriptor chain as popped by the device side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Index of the head descriptor (token for `push_used`).
    pub head: u16,
    /// The chained descriptors in order.
    pub descriptors: Vec<Descriptor>,
}

impl Chain {
    /// Total bytes across device-writable descriptors.
    pub fn writable_bytes(&self) -> u64 {
        self.descriptors
            .iter()
            .filter(|d| d.device_writes)
            .map(|d| d.len as u64)
            .sum()
    }

    /// Total bytes across device-readable descriptors.
    pub fn readable_bytes(&self) -> u64 {
        self.descriptors
            .iter()
            .filter(|d| !d.device_writes)
            .map(|d| d.len as u64)
            .sum()
    }
}

/// One completion reaped from the used ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsedElem {
    /// Head descriptor index of the completed chain.
    pub head: u16,
    /// Bytes the device wrote into the chain's writable descriptors.
    pub written: u32,
}

/// Queue mechanics error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// Not enough free descriptors for the chain.
    Full {
        /// Descriptors requested.
        needed: usize,
        /// Descriptors free.
        free: usize,
    },
    /// A chain must contain at least one descriptor.
    EmptyChain,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full { needed, free } => {
                write!(f, "virtqueue full: need {needed} descriptors, {free} free")
            }
            QueueError::EmptyChain => write!(f, "descriptor chains cannot be empty"),
        }
    }
}

impl std::error::Error for QueueError {}

#[derive(Debug, Clone, Copy)]
struct Slot {
    desc: Descriptor,
    next: Option<u16>,
}

/// A split virtqueue of fixed size.
///
/// # Example
///
/// ```
/// use nesc_virtio::{Virtqueue, queue::Descriptor};
///
/// let mut vq = Virtqueue::new(8);
/// let head = vq.add_chain(&[
///     Descriptor { addr: 0x1000, len: 16, device_writes: false },
///     Descriptor { addr: 0x2000, len: 4096, device_writes: true },
///     Descriptor { addr: 0x3000, len: 1, device_writes: true },
/// ]).unwrap();
/// // Device side:
/// let chain = vq.pop_avail().unwrap();
/// assert_eq!(chain.head, head);
/// assert_eq!(chain.writable_bytes(), 4097);
/// vq.push_used(chain.head, 4097);
/// // Driver side reaps the completion:
/// let used = vq.pop_used().unwrap();
/// assert_eq!((used.head, used.written), (head, 4097));
/// ```
#[derive(Debug)]
pub struct Virtqueue {
    slots: Vec<Option<Slot>>,
    free: Vec<u16>,
    avail: VecDeque<u16>,
    used: VecDeque<(u16, u32)>,
    kicks: u64,
    interrupts: u64,
}

impl Virtqueue {
    /// Creates a queue with `size` descriptors. A size that is zero or
    /// not a power of two (the virtio spec requires power-of-two rings)
    /// is a contract violation and rounds up to the next power of two.
    pub fn new(size: u16) -> Self {
        debug_assert!(size > 0 && size.is_power_of_two(), "ring size must be 2^n");
        let size = size.max(1).next_power_of_two();
        Virtqueue {
            slots: vec![None; size as usize],
            free: (0..size).rev().collect(),
            avail: VecDeque::new(),
            used: VecDeque::new(),
            kicks: 0,
            interrupts: 0,
        }
    }

    /// Ring size.
    pub fn size(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Free descriptor count.
    pub fn free_descriptors(&self) -> usize {
        self.free.len()
    }

    /// Driver side: allocates descriptors for `chain`, links them, and
    /// publishes the head on the avail ring. Returns the head index.
    ///
    /// # Errors
    ///
    /// [`QueueError::Full`] when descriptors are exhausted (the driver
    /// must wait for completions); [`QueueError::EmptyChain`] for empty
    /// input.
    pub fn add_chain(&mut self, chain: &[Descriptor]) -> Result<u16, QueueError> {
        if chain.is_empty() {
            return Err(QueueError::EmptyChain);
        }
        if chain.len() > self.free.len() {
            return Err(QueueError::Full {
                needed: chain.len(),
                free: self.free.len(),
            });
        }
        let mut indices: Vec<u16> = Vec::with_capacity(chain.len());
        for _ in 0..chain.len() {
            match self.free.pop() {
                Some(idx) => indices.push(idx),
                None => {
                    // The free count said there was room — the free list is
                    // out of sync. Roll back and report the ring full.
                    debug_assert!(false, "free list shorter than free count");
                    let needed = chain.len();
                    self.free.append(&mut indices);
                    return Err(QueueError::Full {
                        needed,
                        free: self.free.len(),
                    });
                }
            }
        }
        for (i, (&idx, &desc)) in indices.iter().zip(chain.iter()).enumerate() {
            self.slots[idx as usize] = Some(Slot {
                desc,
                next: indices.get(i + 1).copied(),
            });
        }
        let head = indices[0];
        self.avail.push_back(head);
        Ok(head)
    }

    /// Driver side: notifies the device (counts a kick / doorbell; the
    /// vmexit cost is charged by the system model).
    pub fn kick(&mut self) {
        self.kicks += 1;
    }

    /// Number of kicks so far.
    pub fn kicks(&self) -> u64 {
        self.kicks
    }

    /// Device side: pops the next available chain, if any. A published
    /// chain with a missing link (a protocol violation) reads as absent.
    pub fn pop_avail(&mut self) -> Option<Chain> {
        let head = self.avail.pop_front()?;
        let mut descriptors = Vec::new();
        let mut cur = Some(head);
        while let Some(idx) = cur {
            let slot = self.slots.get(idx as usize).copied().flatten();
            debug_assert!(slot.is_some(), "published chain is intact");
            let slot = slot?;
            descriptors.push(slot.desc);
            cur = slot.next;
        }
        Some(Chain { head, descriptors })
    }

    /// Device side: marks a chain as used (completed), writing back how
    /// many bytes the device produced, and frees its descriptors. A `head`
    /// that does not name a live chain (a protocol violation) frees
    /// whatever prefix of the chain still exists.
    pub fn push_used(&mut self, head: u16, written: u32) {
        // Free the chain's descriptors.
        let mut cur = Some(head);
        while let Some(idx) = cur {
            let slot = self.slots.get_mut(idx as usize).and_then(Option::take);
            debug_assert!(slot.is_some(), "push_used of unknown chain");
            let Some(slot) = slot else { break };
            self.free.push(idx);
            cur = slot.next;
        }
        self.used.push_back((head, written));
        self.interrupts += 1;
    }

    /// Completion interrupts delivered so far.
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }

    /// Driver side: reaps one completion.
    pub fn pop_used(&mut self) -> Option<UsedElem> {
        self.used
            .pop_front()
            .map(|(head, written)| UsedElem { head, written })
    }

    /// Chains currently published and unconsumed.
    pub fn avail_len(&self) -> usize {
        self.avail.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(addr: u64, len: u32, w: bool) -> Descriptor {
        Descriptor {
            addr,
            len,
            device_writes: w,
        }
    }

    #[test]
    fn chain_roundtrip_preserves_order() {
        let mut vq = Virtqueue::new(8);
        let head = vq
            .add_chain(&[d(1, 16, false), d(2, 512, true), d(3, 1, true)])
            .unwrap();
        let chain = vq.pop_avail().unwrap();
        assert_eq!(chain.head, head);
        assert_eq!(chain.descriptors.len(), 3);
        assert_eq!(chain.descriptors[0].addr, 1);
        assert_eq!(chain.descriptors[2].addr, 3);
        assert_eq!(chain.readable_bytes(), 16);
        assert_eq!(chain.writable_bytes(), 513);
    }

    #[test]
    fn exhaustion_and_reuse() {
        let mut vq = Virtqueue::new(4);
        let h1 = vq.add_chain(&[d(1, 1, false), d(2, 1, false)]).unwrap();
        let _h2 = vq.add_chain(&[d(3, 1, false), d(4, 1, false)]).unwrap();
        assert_eq!(
            vq.add_chain(&[d(5, 1, false)]),
            Err(QueueError::Full { needed: 1, free: 0 })
        );
        let c1 = vq.pop_avail().unwrap();
        assert_eq!(c1.head, h1);
        vq.push_used(c1.head, 0);
        assert_eq!(
            vq.pop_used(),
            Some(UsedElem {
                head: h1,
                written: 0
            })
        );
        // Freed descriptors are reusable.
        assert_eq!(vq.free_descriptors(), 2);
        vq.add_chain(&[d(6, 1, false), d(7, 1, false)]).unwrap();
    }

    #[test]
    fn fifo_avail_order() {
        let mut vq = Virtqueue::new(8);
        let a = vq.add_chain(&[d(1, 1, false)]).unwrap();
        let b = vq.add_chain(&[d(2, 1, false)]).unwrap();
        assert_eq!(vq.avail_len(), 2);
        assert_eq!(vq.pop_avail().unwrap().head, a);
        assert_eq!(vq.pop_avail().unwrap().head, b);
        assert!(vq.pop_avail().is_none());
    }

    #[test]
    fn kicks_and_interrupts_counted() {
        let mut vq = Virtqueue::new(2);
        vq.kick();
        vq.kick();
        assert_eq!(vq.kicks(), 2);
        let h = vq.add_chain(&[d(1, 1, true)]).unwrap();
        let c = vq.pop_avail().unwrap();
        vq.push_used(c.head, 1);
        assert_eq!(vq.interrupts(), 1);
        assert_eq!(
            vq.pop_used(),
            Some(UsedElem {
                head: h,
                written: 1
            })
        );
    }

    #[test]
    fn empty_chain_rejected() {
        let mut vq = Virtqueue::new(2);
        assert_eq!(vq.add_chain(&[]), Err(QueueError::EmptyChain));
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn non_pow2_size_rejected() {
        Virtqueue::new(3);
    }

    proptest! {
        /// Any interleaving of add/pop/complete keeps descriptor accounting
        /// exact: free + live == size, and every chain round-trips intact.
        #[test]
        fn prop_descriptor_accounting(ops in proptest::collection::vec((1usize..4, any::<bool>()), 1..100)) {
            let mut vq = Virtqueue::new(16);
            let mut live: Vec<(u16, usize)> = Vec::new(); // (head, len)
            for &(chain_len, complete) in &ops {
                if complete {
                    if let Some(chain) = vq.pop_avail() {
                        let expect = live.iter().position(|&(h, _)| h == chain.head).unwrap();
                        let (_, len) = live.remove(expect);
                        prop_assert_eq!(chain.descriptors.len(), len);
                        vq.push_used(chain.head, 0);
                        vq.pop_used();
                    }
                } else {
                    let descs: Vec<Descriptor> =
                        (0..chain_len).map(|i| d(i as u64, 1, false)).collect();
                    if let Ok(head) = vq.add_chain(&descs) {
                        live.push((head, chain_len));
                    }
                }
                let live_descs: usize = live.iter().map(|&(_, l)| l).sum();
                prop_assert_eq!(vq.free_descriptors() + live_descs, 16);
            }
        }
    }
}
