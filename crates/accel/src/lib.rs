#![warn(missing_docs)]

//! Accelerator-direct storage access — the NeSC extension of paper §IV-D.
//!
//! "Traditionally, when an accelerator on the system needs to access
//! storage, it must use the host OS as an intermediary and thereby waste
//! CPU cycles and energy. ... NeSC can be easily extended to enable direct
//! accelerator-storage communications ... by modifying the VF
//! request-response interface ... to a direct device-to-device DMA
//! interface (in which offset 0 in the device matches offset 0 in the
//! file)."
//!
//! This crate models that extension:
//!
//! * [`Accelerator`] — a PCIe peer (think GPGPU/FPGA) with a BAR-mapped
//!   local memory window and a small command processor;
//! * [`Accelerator::fetch_direct`] / [`Accelerator::flush_direct`] — the
//!   extension path: the accelerator rings the VF itself and NeSC DMAs
//!   file data peer-to-peer into the accelerator's BAR window, no host CPU
//!   involved;
//! * [`HostMediated`] — the baseline the paper contrasts: the accelerator
//!   asks the host, the host performs the file I/O into a system buffer,
//!   then copies across PCIe into the accelerator and signals it — two
//!   interrupts and a full traversal of the host software stack.
//!
//! The crate's tests and the `accelerator_direct` example show both
//! correctness (bytes land where they should, isolation still holds — the
//! accelerator's VF is as confined as any VM's) and the latency gap.

use std::fmt;

use nesc_core::{CompletionStatus, FuncId, NescDevice, NescOutput};
use nesc_extent::{Plba, Vlba};
use nesc_pcie::HostAddr;
use nesc_sim::{ServiceUnit, SimDuration, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};

/// A PCIe accelerator with a BAR-mapped local memory window.
///
/// The window lives in the system's PCIe address space (that is how
/// peer-to-peer DMA addresses it), so it is carved out of the shared
/// [`HostMemory`][nesc_pcie::HostMemory] the device DMAs into — exactly
/// like a real accelerator BAR.
#[derive(Debug)]
pub struct Accelerator {
    /// Base of the BAR-mapped local memory window.
    window_base: HostAddr,
    /// Window size in bytes.
    window_len: u64,
    /// The accelerator's command processor (issues descriptors, polls
    /// completions).
    engine: ServiceUnit,
    /// Cost to build and ring one storage descriptor.
    cmd_cost: SimDuration,
    next_req: u64,
    fetches: u64,
    bytes_moved: u64,
}

/// Error from an accelerator transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccelError {
    /// The transfer does not fit the accelerator's local window.
    WindowOverflow {
        /// Requested bytes.
        requested: u64,
        /// Window capacity.
        window: u64,
    },
    /// The storage device rejected the request.
    Storage(CompletionStatus),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::WindowOverflow { requested, window } => {
                write!(f, "transfer of {requested} B exceeds {window} B window")
            }
            AccelError::Storage(s) => write!(f, "storage error: {s:?}"),
        }
    }
}

impl std::error::Error for AccelError {}

impl Accelerator {
    /// Creates an accelerator whose BAR window is `[window_base,
    /// window_base + window_len)` in the system address space.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn new(window_base: HostAddr, window_len: u64) -> Self {
        assert!(window_len > 0, "accelerator needs local memory");
        Accelerator {
            window_base,
            window_len,
            engine: ServiceUnit::new(),
            cmd_cost: SimDuration::from_nanos(400),
            next_req: 0x4ACC_0000_0000,
            fetches: 0,
            bytes_moved: 0,
        }
    }

    /// Base address of the BAR window.
    pub fn window_base(&self) -> HostAddr {
        self.window_base
    }

    /// Completed fetch/flush operations.
    pub fn transfers(&self) -> u64 {
        self.fetches
    }

    /// Total bytes moved to/from storage.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    fn fresh_id(&mut self) -> RequestId {
        self.next_req += 1;
        RequestId(self.next_req)
    }

    // allow: mirrors the DMA descriptor the accelerator posts (device,
    // function, op, file window, stride) one field per argument; folding
    // them into a struct would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn transfer_direct(
        &mut self,
        now: SimTime,
        dev: &mut NescDevice,
        vf: FuncId,
        op: BlockOp,
        file_offset: u64,
        len: u64,
        window_offset: u64,
    ) -> Result<SimTime, AccelError> {
        if window_offset + len > self.window_len {
            return Err(AccelError::WindowOverflow {
                requested: window_offset + len,
                window: self.window_len,
            });
        }
        assert_eq!(file_offset % BLOCK_SIZE, 0, "block-aligned transfers only");
        assert!(
            len > 0 && len.is_multiple_of(BLOCK_SIZE),
            "block-multiple length"
        );
        // The accelerator's command processor builds the descriptor and
        // rings the VF's doorbell itself — no host CPU anywhere.
        let t = self.engine.serve(now, self.cmd_cost).end;
        let t = dev.ring_doorbell(t);
        let id = self.fresh_id();
        dev.submit(
            t,
            vf,
            BlockRequest::new(
                id,
                op,
                Vlba::from_byte_offset(file_offset),
                len / BLOCK_SIZE,
            ),
            self.window_base + window_offset,
        );
        let outs = dev.advance(SimTime::from_nanos(u64::MAX / 4));
        let done = outs
            .iter()
            .find_map(|o| match o {
                NescOutput::Completion {
                    at,
                    id: cid,
                    status,
                    ..
                } if *cid == id => Some((*at, *status)),
                _ => None,
            })
            .expect("device completes accelerator requests");
        match done.1 {
            CompletionStatus::Ok => {
                self.fetches += 1;
                self.bytes_moved += len;
                // Completion MSI lands straight at the accelerator.
                Ok(self.engine.serve(done.0, self.cmd_cost / 2).end)
            }
            other => Err(AccelError::Storage(other)),
        }
    }

    /// Reads `len` bytes of the VF's file at `file_offset` straight into
    /// the accelerator window at `window_offset` (peer DMA). Returns the
    /// completion time.
    ///
    /// # Errors
    ///
    /// [`AccelError`] on window overflow or storage failure.
    ///
    /// # Panics
    ///
    /// Panics on unaligned offsets/lengths (the direct interface is
    /// block-granular, paper §IV-D).
    pub fn fetch_direct(
        &mut self,
        now: SimTime,
        dev: &mut NescDevice,
        vf: FuncId,
        file_offset: u64,
        len: u64,
        window_offset: u64,
    ) -> Result<SimTime, AccelError> {
        self.transfer_direct(now, dev, vf, BlockOp::Read, file_offset, len, window_offset)
    }

    /// Writes accelerator-local data back to the VF's file (peer DMA).
    ///
    /// # Errors
    ///
    /// [`AccelError`] on window overflow or storage failure.
    ///
    /// # Panics
    ///
    /// Panics on unaligned offsets/lengths.
    pub fn flush_direct(
        &mut self,
        now: SimTime,
        dev: &mut NescDevice,
        vf: FuncId,
        file_offset: u64,
        len: u64,
        window_offset: u64,
    ) -> Result<SimTime, AccelError> {
        self.transfer_direct(
            now,
            dev,
            vf,
            BlockOp::Write,
            file_offset,
            len,
            window_offset,
        )
    }
}

/// The traditional path: the host OS mediates every accelerator-storage
/// transfer (the baseline §IV-D argues against).
#[derive(Debug)]
pub struct HostMediated {
    /// Host CPU handling the accelerator's request.
    host_cpu: ServiceUnit,
    /// Syscall + driver + wake-up cost per transfer.
    pub request_overhead: SimDuration,
    /// Host→accelerator (or back) copy bandwidth over PCIe.
    pub copy_bytes_per_sec: u64,
    /// Interrupt/notification cost in each direction.
    pub notify_cost: SimDuration,
    /// Request-id counter for the host's PF I/O.
    next_req: u64,
}

impl Default for HostMediated {
    fn default() -> Self {
        HostMediated {
            host_cpu: ServiceUnit::new(),
            request_overhead: SimDuration::from_micros(20),
            copy_bytes_per_sec: 6_000_000_000,
            notify_cost: SimDuration::from_micros(5),
            next_req: 0x4057_0000,
        }
    }
}

impl HostMediated {
    /// Creates the baseline with default costs.
    pub fn new() -> Self {
        Self::default()
    }

    /// The host reads the file region through the PF into a system buffer
    /// and copies it into the accelerator. Returns the completion time.
    pub fn fetch_via_host(
        &mut self,
        now: SimTime,
        dev: &mut NescDevice,
        staging: HostAddr,
        plba: Plba,
        len: u64,
    ) -> SimTime {
        // Accelerator notifies the host; host wakes, issues the PF I/O.
        let t = self
            .host_cpu
            .serve(now + self.notify_cost, self.request_overhead)
            .end;
        let t = dev.ring_doorbell(t);
        self.next_req += 1;
        let id = RequestId(self.next_req);
        dev.submit_pf(
            t,
            BlockRequest::new(id, BlockOp::Read, plba, len / BLOCK_SIZE),
            staging,
        );
        let outs = dev.advance(SimTime::from_nanos(u64::MAX / 4));
        let done = outs
            .iter()
            .filter(|o| o.is_completion())
            .map(NescOutput::at)
            .max()
            .expect("PF completes");
        // Host copies the buffer into the accelerator window and signals.
        let copy = SimDuration::for_bytes(len, self.copy_bytes_per_sec);
        self.host_cpu.serve(done, copy).end + self.notify_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_core::NescConfig;
    use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
    use nesc_pcie::HostMemory;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup() -> (Rc<RefCell<HostMemory>>, NescDevice, FuncId) {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 8192;
        let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(100), 64)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let vf = dev.create_vf(root, 64).unwrap();
        (mem, dev, vf)
    }

    #[test]
    fn direct_fetch_lands_in_window() {
        let (mem, mut dev, vf) = setup();
        dev.store_mut()
            .write_block(Plba(100), &vec![0xCA; 1024])
            .unwrap();
        dev.store_mut()
            .write_block(Plba(101), &vec![0xFE; 1024])
            .unwrap();
        let window = mem.borrow_mut().alloc(1 << 20, 4096);
        let mut acc = Accelerator::new(window, 1 << 20);
        acc.fetch_direct(SimTime::ZERO, &mut dev, vf, 0, 2048, 0)
            .unwrap();
        let got = mem.borrow().read_vec(window, 2048);
        assert!(got[..1024].iter().all(|&b| b == 0xCA));
        assert!(got[1024..].iter().all(|&b| b == 0xFE));
        assert_eq!(acc.transfers(), 1);
        assert_eq!(acc.bytes_moved(), 2048);
    }

    #[test]
    fn direct_flush_writes_file_blocks() {
        let (mem, mut dev, vf) = setup();
        let window = mem.borrow_mut().alloc(1 << 20, 4096);
        mem.borrow_mut().write(window, &[0x77u8; 1024]);
        let mut acc = Accelerator::new(window, 1 << 20);
        acc.flush_direct(SimTime::ZERO, &mut dev, vf, 5 * 1024, 1024, 0)
            .unwrap();
        // vLBA 5 maps to pLBA 105.
        assert_eq!(dev.store().read_block(Plba(105)).unwrap(), vec![0x77; 1024]);
    }

    #[test]
    fn window_overflow_rejected() {
        let (mem, mut dev, vf) = setup();
        let window = mem.borrow_mut().alloc(4096, 4096);
        let mut acc = Accelerator::new(window, 4096);
        let err = acc
            .fetch_direct(SimTime::ZERO, &mut dev, vf, 0, 8192, 0)
            .unwrap_err();
        assert!(matches!(err, AccelError::WindowOverflow { .. }));
        assert!(err.to_string().contains("window"));
    }

    #[test]
    fn accelerator_vf_is_still_confined() {
        // The accelerator can only reach its VF's file, like any VM.
        let (mem, mut dev, vf) = setup();
        let window = mem.borrow_mut().alloc(1 << 20, 4096);
        let mut acc = Accelerator::new(window, 1 << 20);
        let err = acc
            .fetch_direct(SimTime::ZERO, &mut dev, vf, 64 * 1024, 1024, 0)
            .unwrap_err();
        assert_eq!(err, AccelError::Storage(CompletionStatus::OutOfRange));
    }

    #[test]
    fn direct_beats_host_mediated() {
        let (mem, mut dev, vf) = setup();
        let window = mem.borrow_mut().alloc(1 << 20, 4096);
        let staging = mem.borrow_mut().alloc(1 << 20, 4096);
        let mut acc = Accelerator::new(window, 1 << 20);
        let t_direct = acc
            .fetch_direct(SimTime::ZERO, &mut dev, vf, 0, 16 * 1024, 0)
            .unwrap();

        let (_, mut dev2, _) = setup();
        let mut host = HostMediated::new();
        let t_host = host.fetch_via_host(SimTime::ZERO, &mut dev2, staging, Plba(100), 16 * 1024);
        assert!(
            t_host.as_nanos() > t_direct.as_nanos() * 2,
            "host-mediated {t_host} should dwarf direct {t_direct}"
        );
    }
}
