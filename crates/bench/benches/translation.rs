//! Criterion microbenchmarks of the translation machinery: extent-tree
//! serialization, device-side walks at each depth, and the BTLB. These
//! measure the *simulator's* wall-clock cost (how fast the model runs),
//! complementing the simulated-time harnesses in `src/bin/`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nesc_core::Btlb;
use nesc_extent::{walk, ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;

fn fragmented_tree(extents: u64) -> ExtentTree {
    (0..extents)
        .map(|i| ExtentMapping::new(Vlba(i * 2), Plba(i * 3 + 7), 1))
        .collect()
}

fn bench_serialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("extent_tree_serialize");
    group.sample_size(20);
    for &extents in &[16u64, 512, 8192] {
        let tree = fragmented_tree(extents);
        group.bench_with_input(BenchmarkId::from_parameter(extents), &tree, |b, tree| {
            b.iter(|| {
                let mut mem = HostMemory::new();
                std::hint::black_box(tree.serialize(&mut mem))
            })
        });
    }
    group.finish();
}

fn bench_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_walk");
    group.sample_size(30);
    for &extents in &[16u64, 512, 8192] {
        let tree = fragmented_tree(extents);
        let mut mem = HostMemory::new();
        let root = tree.serialize(&mut mem);
        let depth = tree.serialized_depth();
        group.bench_function(BenchmarkId::new("depth", depth), |b| {
            let mut v = 0u64;
            b.iter(|| {
                v = (v + 2) % (extents * 2);
                std::hint::black_box(walk(&mem, root, Vlba(v)))
            })
        });
    }
    group.finish();
}

fn bench_btlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("btlb");
    group.sample_size(30);
    group.bench_function("lookup_hit", |b| {
        let mut btlb = Btlb::new(8);
        for f in 0..8u16 {
            btlb.insert(f, ExtentMapping::new(Vlba(0), Plba(f as u64 * 100), 64));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(btlb.lookup((i % 8) as u16, Vlba(i % 64)))
        })
    });
    group.bench_function("insert_evict", |b| {
        let mut btlb = Btlb::new(8);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            btlb.insert((i % 4) as u16, ExtentMapping::new(Vlba(i), Plba(i * 2), 1));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serialize, bench_walk, bench_btlb);
criterion_main!(benches);
