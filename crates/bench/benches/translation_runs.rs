//! Criterion microbenchmarks of extent-run batched translation: the
//! device data path with batching on vs off (the `max_run_blocks = 1`
//! per-block baseline), and the `walk_run` / `lookup_run` primitives the
//! batching is built from. Wall-clock only — simulated results are
//! identical across all of these by construction (see
//! `nesc_bench::hotpath`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nesc_bench::hotpath::{build_device, EXTENT_BLOCKS};
use nesc_core::Btlb;
use nesc_extent::{walk_run, ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::{SimDuration, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};

/// One 64 KiB sequential read per iteration, batched vs per-block.
fn bench_device_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation_runs");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(64 * BLOCK_SIZE));
    for (label, max_run) in [("seq_64k_batched", u64::MAX), ("seq_64k_per_block", 1)] {
        group.bench_function(label, |b| {
            let (mut dev, vf, buf) = build_device(8, max_run, 64);
            let horizon = SimTime::from_nanos(u64::MAX / 4);
            let mut t = SimTime::ZERO;
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                t += SimDuration::from_micros(100);
                let lba = Vlba((i * 64) % (EXTENT_BLOCKS * 32));
                dev.submit(
                    t,
                    vf,
                    BlockRequest::new(RequestId(i), BlockOp::Read, lba, 64),
                    buf,
                );
                std::hint::black_box(dev.advance(horizon))
            })
        });
    }
    group.finish();
}

/// `walk_run` sizes a whole extent from one descent; per-block walking
/// re-descends for every block. 64 blocks inside one extent.
fn bench_walk_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_run");
    group.sample_size(30);
    let tree: ExtentTree = (0..64u64)
        .map(|i| ExtentMapping::new(Vlba(i * 256), Plba(i * 256 + 7), 256))
        .collect();
    let mut mem = HostMemory::new();
    let root = tree.serialize(&mut mem);
    group.bench_function(BenchmarkId::new("blocks", 64), |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 64) % (64 * 256);
            std::hint::black_box(walk_run(&mem, root, Vlba(v), 64))
        })
    });
    group.bench_function(BenchmarkId::new("per_block_equiv", 64), |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 64) % (64 * 256);
            for j in 0..64 {
                std::hint::black_box(walk_run(&mem, root, Vlba(v + j), 1));
            }
        })
    });
    group.finish();
}

/// Indexed BTLB probes at ablation-scale capacities (the old linear scan
/// walked every entry of every function).
fn bench_lookup_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("btlb_lookup_run");
    group.sample_size(30);
    for &cap in &[8usize, 64, 512] {
        let mut btlb = Btlb::new(cap);
        for i in 0..cap as u64 {
            btlb.insert(
                (i % 4) as u16,
                ExtentMapping::new(Vlba(i * 128), Plba(i * 128), 128),
            );
        }
        group.bench_function(BenchmarkId::from_parameter(cap), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let v = (i * 37) % (cap as u64 * 128);
                std::hint::black_box(btlb.lookup_run((v as u16 / 128) % 4, Vlba(v), 64))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_device_stream,
    bench_walk_run,
    bench_lookup_run
);
criterion_main!(benches);
