//! Criterion microbenchmarks of the device model's hot paths: request
//! processing through the VF multiplexer and translation pipeline, PF
//! out-of-band traffic, and the filesystem substrate.

use std::cell::RefCell;
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nesc_core::{NescConfig, NescDevice};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_fs::Filesystem;
use nesc_pcie::HostMemory;
use nesc_sim::{SimDuration, SimTime};
use nesc_storage::{BlockOp, BlockRequest, BlockStore, RequestId};

fn bench_vf_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("vf_4k_read", |b| {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 64 * 1024;
        let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(0), 32 * 1024)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let vf = dev.create_vf(root, 32 * 1024).unwrap();
        let buf = mem.borrow_mut().alloc(4096, 4096);
        let mut t = SimTime::ZERO;
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            t += SimDuration::from_micros(100);
            dev.submit(
                t,
                vf,
                BlockRequest::new(RequestId(id), BlockOp::Read, Vlba((id * 4) % 32_000), 4),
                buf,
            );
            std::hint::black_box(dev.advance(SimTime::from_nanos(u64::MAX / 4)))
        })
    });
    group.bench_function("pf_4k_write_oob", |b| {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 64 * 1024;
        let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
        let buf = mem.borrow_mut().alloc(4096, 4096);
        let mut t = SimTime::ZERO;
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            t += SimDuration::from_micros(100);
            let pf = dev.pf();
            dev.submit(
                t,
                pf,
                BlockRequest::new(RequestId(id), BlockOp::Write, Vlba((id * 4) % 32_000), 4),
                buf,
            );
            std::hint::black_box(dev.advance(SimTime::from_nanos(u64::MAX / 4)))
        })
    });
    group.finish();
}

fn bench_filesystem(c: &mut Criterion) {
    let mut group = c.benchmark_group("filesystem");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(16 * 1024));
    group.bench_function("write_16k_extend", |b| {
        let mut store = BlockStore::new(1 << 20);
        let mut fs = Filesystem::format(1 << 20);
        let ino = fs.create("bench").unwrap();
        let data = vec![7u8; 16 * 1024];
        let mut off = 0u64;
        // Wrap within a 256 MiB window so long criterion runs never
        // exhaust the device (the first pass measures extends, later
        // passes in-place rewrites — both realistic).
        let window = 256u64 << 20;
        b.iter(|| {
            fs.write(&mut store, ino, off % window, &data).unwrap();
            off += 16 * 1024;
        })
    });
    group.bench_function("read_16k", |b| {
        let mut store = BlockStore::new(1 << 20);
        let mut fs = Filesystem::format(1 << 20);
        let ino = fs.create("bench").unwrap();
        fs.write(&mut store, ino, 0, &vec![7u8; 1 << 20]).unwrap();
        let mut off = 0u64;
        b.iter(|| {
            let got = fs.read(&mut store, ino, off % ((1 << 20) - 16 * 1024), 16 * 1024);
            off += 16 * 1024;
            std::hint::black_box(got)
        })
    });
    group.finish();
}

fn bench_interfaces(c: &mut Criterion) {
    use nesc_core::ring::{RingDescriptor, DESCRIPTOR_BYTES};
    use nesc_nvme::{NvmeController, NvmeOpcode, SubmissionEntry};

    let mut group = c.benchmark_group("interfaces");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("nvme_4k_read", |b| {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 64 * 1024;
        let mut ctrl = NvmeController::new(cfg, Rc::clone(&mem));
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(0), 32 * 1024)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let ns = ctrl.create_namespace(root, 32 * 1024).unwrap();
        let qid = ctrl.create_queue_pair(64);
        let buf = mem.borrow_mut().alloc(4096, 4096);
        let mut t = SimTime::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t += SimDuration::from_micros(100);
            let done = ctrl
                .submit_and_process(
                    t,
                    qid,
                    &[SubmissionEntry::new(
                        NvmeOpcode::Read,
                        (i % 32) as u16,
                        ns,
                        buf,
                        Vlba((i * 4) % 32_000),
                        3,
                    )],
                )
                .unwrap();
            std::hint::black_box(done)
        })
    });
    group.bench_function("ring_descriptor_roundtrip", |b| {
        let d = RingDescriptor::new(BlockOp::Read, RequestId(1), Vlba(42), 4, 0x9000);
        let _ = DESCRIPTOR_BYTES;
        b.iter(|| std::hint::black_box(RingDescriptor::decode(&d.encode())))
    });
    group.finish();
}

criterion_group!(benches, bench_vf_read, bench_filesystem, bench_interfaces);
criterion_main!(benches);
