//! Criterion end-to-end benchmark: how fast the whole-system simulation
//! itself runs (simulated I/Os per wall-clock second), per virtualization
//! path. This is the number a user cares about when sizing experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nesc_core::NescConfig;
use nesc_hypervisor::{DiskKind, SoftwareCosts, System};
use nesc_storage::BlockOp;
use nesc_workloads::{Dd, DdMode, TenantIo, Workload};

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_dd_64ops");
    group.sample_size(10);
    group.throughput(Throughput::Elements(64));
    for (kind, name) in [
        (DiskKind::NescDirect, "nesc"),
        (DiskKind::Virtio, "virtio"),
        (DiskKind::Emulated, "emulated"),
        (DiskKind::HostRaw, "host"),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut cfg = NescConfig::prototype();
                cfg.capacity_blocks = 64 * 1024;
                let mut sys = System::new(cfg, SoftwareCosts::calibrated());
                let disk = sys.quick_disk(kind, "bench.img", 16 << 20).disk;
                std::hint::black_box(
                    Dd::new(BlockOp::Write, 4096, 64, DdMode::Sync)
                        .run(&mut TenantIo::attached(&mut sys, disk)),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
