//! Zero-allocation assertion for the steady-state device loop.
//!
//! The calendar-wheel scheduler, the reusable output partition buffer, and
//! the struct-of-arrays per-function counters exist so that once every
//! ring, bucket, and scratch vector has grown to its working size, driving
//! the device allocates *nothing*. This harness pins that property with a
//! counting `#[global_allocator]`: warm the device until every container
//! has seen its peak occupancy, then run the same loop again under the
//! counter and demand zero `alloc`/`realloc` calls.
//!
//! The counter lives in its own integration-test binary because a global
//! allocator is process-wide; keeping it here means the unit suites run on
//! the system allocator untouched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nesc_bench::hotpath::{build_device, HotpathConfig, DEVICE_BLOCKS};
use nesc_core::NescOutput;
use nesc_sim::{SimDuration, SimRng, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId};

/// Counts allocator calls while armed; delegates everything to [`System`].
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static TRACE: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            if TRACE.load(Ordering::Relaxed) {
                ARMED.store(false, Ordering::SeqCst);
                eprintln!(
                    "ALLOC size={} align={}\n{}",
                    layout.size(),
                    layout.align(),
                    std::backtrace::Backtrace::force_capture()
                );
                ARMED.store(true, Ordering::SeqCst);
            }
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Runs `requests` requests of `cfg`'s stream shape through `advance_into`
/// with the caller's reused output buffer, continuing the request index and
/// clock from `start_i`.
// allow: the harness must thread every piece of mutable driver state
// through the armed-allocator window without bundling it into a struct
// (a struct literal here would itself be a measured allocation site).
#[allow(clippy::too_many_arguments)]
fn drive(
    dev: &mut nesc_core::NescDevice,
    vf: nesc_core::FuncId,
    buf: u64,
    cfg: &HotpathConfig,
    rng: &mut SimRng,
    t: &mut SimTime,
    start_i: u64,
    requests: u64,
    outs: &mut Vec<NescOutput>,
) {
    let horizon = SimTime::from_nanos(u64::MAX / 4);
    let slots = DEVICE_BLOCKS / cfg.req_blocks;
    for i in start_i..start_i + requests {
        *t += SimDuration::from_micros(100);
        let lba = if cfg.sequential {
            nesc_extent::Vlba((i % slots) * cfg.req_blocks)
        } else {
            nesc_extent::Vlba(rng.range(0, slots) * cfg.req_blocks)
        };
        dev.submit(
            *t,
            vf,
            BlockRequest::new(RequestId(i + 1), BlockOp::Read, lba, cfg.req_blocks),
            buf,
        );
        outs.clear();
        dev.advance_into(horizon, outs);
        assert!(!outs.is_empty(), "every read must complete within horizon");
    }
}

/// After warm-up, the submit → advance_into loop performs zero heap
/// allocations, for both stream shapes and with the BTLB on and off.
#[test]
fn steady_state_device_loop_is_allocation_free() {
    TRACE.store(std::env::var_os("ALLOC_TRACE").is_some(), Ordering::SeqCst);
    for (sequential, btlb_entries) in [(true, 8usize), (true, 0), (false, 8)] {
        let cfg = HotpathConfig {
            btlb_entries,
            max_run_blocks: u64::MAX,
            req_blocks: 64,
            sequential,
            requests: 0, // unused; drive() takes its own count
        };
        let (mut dev, vf, buf) = build_device(cfg.btlb_entries, cfg.max_run_blocks, cfg.req_blocks);
        let mut rng = SimRng::seed(0x5eed_0dd5);
        let mut t = SimTime::ZERO;
        let mut outs: Vec<NescOutput> = Vec::with_capacity(64);
        // Warm-up: one full wrap of the sequential stream (or the same
        // request count randomly placed) grows every bucket, ring, and
        // scratch vector to its steady size.
        let warm = DEVICE_BLOCKS / cfg.req_blocks;
        drive(
            &mut dev, vf, buf, &cfg, &mut rng, &mut t, 0, warm, &mut outs,
        );

        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        drive(
            &mut dev, vf, buf, &cfg, &mut rng, &mut t, warm, 256, &mut outs,
        );
        ARMED.store(false, Ordering::SeqCst);
        let n = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            n, 0,
            "steady-state loop allocated {n} times (sequential={sequential}, btlb={btlb_entries})"
        );
    }
}
