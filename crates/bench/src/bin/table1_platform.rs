//! Table I — the experimental platform.
//!
//! The paper's table describes the physical testbed (Supermicro host,
//! VC707 FPGA, QEMU/KVM guests). The reproduction's "platform" is the
//! simulated configuration; this binary prints both side by side so every
//! modeled parameter is auditable against the paper.

use nesc_bench::{emit_json, print_table};
use nesc_core::NescConfig;
use nesc_hypervisor::SoftwareCosts;

fn main() {
    println!("Table I reproduction: experimental platform");
    let cfg = NescConfig::prototype();
    let costs = SoftwareCosts::calibrated_with_trampoline();

    let rows = vec![
        vec![
            "Host machine".into(),
            "Supermicro X9DRG-QF, dual Xeon E5 2.4GHz".into(),
            "software-cost model (calibrated CPU layer costs)".into(),
        ],
        vec![
            "Host memory".into(),
            "64 GB DDR3-1600".into(),
            "sparse byte-addressable HostMemory".into(),
        ],
        vec![
            "Hypervisor".into(),
            "QEMU 1.2 / KVM, Ubuntu 12.04 (3.5.0)".into(),
            "nesc-hypervisor System (emulation/virtio/direct paths)".into(),
        ],
        vec![
            "Guest".into(),
            "Linux 3.13, 128 MB RAM, ext4".into(),
            "vCPU service unit + nesc-fs guest filesystem".into(),
        ],
        vec![
            "Prototype".into(),
            "Xilinx VC707 (Virtex-7), 1 GB DDR3-800".into(),
            format!(
                "NescDevice: {} MB store, DRAM media model",
                cfg.capacity_blocks * 1024 / 1_000_000
            ),
        ],
        vec![
            "Host I/O".into(),
            "PCIe x8 gen2".into(),
            format!(
                "link model: gen2 x8, {:.1} GB/s effective, {} B max payload",
                cfg.link.bandwidth() as f64 / 1e9,
                cfg.link.max_payload
            ),
        ],
        vec![
            "DMA engine".into(),
            "~800 MB/s read, ~1 GB/s write (academic prototype)".into(),
            format!(
                "{} MB/s read, {} MB/s write ceilings",
                cfg.dma_read_bytes_per_sec / 1_000_000,
                cfg.dma_write_bytes_per_sec / 1_000_000
            ),
        ],
        vec![
            "Virtual functions".into(),
            "up to 64 (emulated SR-IOV, trampoline buffers)".into(),
            format!(
                "{} VFs, trampoline copies at {} GB/s",
                cfg.max_vfs,
                costs.trampoline_bytes_per_sec.unwrap_or(0) / 1_000_000_000
            ),
        ],
        vec![
            "BTLB".into(),
            "8 extent entries".into(),
            format!("{} entries, FIFO eviction", cfg.btlb_entries),
        ],
        vec![
            "Block walk".into(),
            "2 overlapped walks".into(),
            format!(
                "{} walk slots, {} B nodes",
                cfg.walk_overlap, cfg.tree_node_bytes
            ),
        ],
    ];
    print_table(
        "Platform (paper -> model)",
        &["component", "paper", "model"],
        &rows,
    );

    emit_json(
        "table1_platform",
        &serde_json::json!({
            "rows": rows,
            "config": {
                "capacity_blocks": cfg.capacity_blocks,
                "max_vfs": cfg.max_vfs,
                "btlb_entries": cfg.btlb_entries,
                "walk_overlap": cfg.walk_overlap,
                "dma_read_bps": cfg.dma_read_bytes_per_sec,
                "dma_write_bps": cfg.dma_write_bytes_per_sec,
                "link_bps": cfg.link.bandwidth(),
            }
        }),
    );
}
