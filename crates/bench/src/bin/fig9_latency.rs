//! Fig. 9 — raw access latency for reads (top) and writes (bottom) across
//! block sizes from 512 B to 32 KiB, on all four paths.
//!
//! Paper result being reproduced: "the latency obtained by NeSC for both
//! read and write is similar to that obtained by the host ... Furthermore,
//! the NeSC latency is over 6× faster than virtio and over 20× faster than
//! device emulation for accesses smaller than 4KB."

use nesc_bench::{all_paths, emit_json, fmt, paper_block_sizes, print_table, standard_system};
use nesc_storage::BlockOp;
use nesc_workloads::{Dd, DdMode, TenantIo, Workload};

const IMAGE_BYTES: u64 = 64 << 20;
const SAMPLES: u64 = 32;

fn measure(op: BlockOp) -> Vec<Vec<String>> {
    let sizes = paper_block_sizes();
    let mut rows = Vec::new();
    let mut per_path: Vec<(String, Vec<f64>)> = Vec::new();
    for (kind, label) in all_paths() {
        let (mut sys, _vm, disk) = standard_system(kind, IMAGE_BYTES);
        // Warm-up: touch the range so first-allocation effects don't skew
        // the steady-state latency (the paper measures a prepared device).
        Dd::new(BlockOp::Write, 32768, 8, DdMode::Sync)
            .run(&mut TenantIo::attached(&mut sys, disk));
        let mut lat_us = Vec::new();
        for &bs in &sizes {
            let rep =
                Dd::new(op, bs, SAMPLES, DdMode::Sync).run(&mut TenantIo::attached(&mut sys, disk));
            lat_us.push(rep.mean_latency_us());
        }
        per_path.push((label.to_string(), lat_us));
    }
    for (i, &bs) in sizes.iter().enumerate() {
        let label = if bs < 1024 {
            format!("{:.1}", bs as f64 / 1024.0)
        } else {
            format!("{}", bs / 1024)
        };
        let mut row = vec![label];
        for (_, lats) in &per_path {
            row.push(fmt(lats[i]));
        }
        rows.push(row);
    }
    rows
}

fn main() {
    println!("Fig. 9 reproduction: raw access latency (us) vs block size (KB)");
    let labels: Vec<&str> = all_paths().iter().map(|&(_, l)| l).collect();
    let mut headers = vec!["KB"];
    headers.extend(&labels);

    let read_rows = measure(BlockOp::Read);
    print_table("Read latency [us]", &headers, &read_rows);
    let write_rows = measure(BlockOp::Write);
    print_table("Write latency [us]", &headers, &write_rows);

    // Headline claims.
    let small = |rows: &[Vec<String>], col: usize| -> f64 { rows[0][col].parse().unwrap() };
    let nesc = small(&write_rows, 1);
    let virtio = small(&write_rows, 2);
    let emu = small(&write_rows, 3);
    let host = small(&write_rows, 4);
    println!("\nheadline (512B writes):");
    println!("  NeSC vs host    : {:.2}x  (paper: ~1x)", nesc / host);
    println!("  virtio vs NeSC  : {:.1}x  (paper: >6x)", virtio / nesc);
    println!("  emulation vs NeSC: {:.1}x (paper: >20x)", emu / nesc);

    emit_json(
        "fig9_latency",
        &serde_json::json!({
            "block_sizes": paper_block_sizes(),
            "paths": labels,
            "read_us": read_rows,
            "write_us": write_rows,
        }),
    );
}
