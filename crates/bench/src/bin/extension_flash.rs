//! Extension study — NeSC over NAND flash.
//!
//! The paper's prototype uses DRAM as its medium ("we do not emulate a
//! specific access latency technology"), but its motivation is the
//! "introduction of next-generation, commercial PCIe SSDs" (refs \[6\], \[7\]).
//! This harness swaps the medium for the multi-channel flash model and
//! checks that NeSC's advantage survives realistic flash latencies: reads
//! pay ~25 µs of array time, writes ~200 µs of program time, and the
//! controller's page buffers serve sub-page block runs — so the software
//! overheads NeSC removes remain visible even when the medium is the
//! slowest stage.

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::NescConfig;
use nesc_hypervisor::{DiskKind, SystemBuilder};
use nesc_storage::{BlockOp, FlashMedia, Media};
use nesc_workloads::{Dd, DdMode, TenantIo, Workload};

const IMAGE_BYTES: u64 = 256 << 20;

fn flash_config() -> NescConfig {
    let mut cfg = NescConfig::gen3();
    cfg.media = Media::Flash(FlashMedia::pcie_ssd());
    cfg
}

fn run(kind: DiskKind, op: BlockOp, bs: u64, qd: usize) -> f64 {
    let mut sys = SystemBuilder::new().config(flash_config()).build();
    let disk = sys.quick_disk(kind, "flash.img", IMAGE_BYTES).disk;
    Dd::new(op, bs, (32 << 20) / bs, DdMode::Pipelined { qd })
        .run(&mut TenantIo::attached(&mut sys, disk))
        .mbps()
}

fn main() {
    println!("Extension: NeSC over a multi-channel NAND SSD (16ch, 25us read / 200us program)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (op, name) in [(BlockOp::Read, "read"), (BlockOp::Write, "write")] {
        for (bs, qd) in [(16 * 1024u64, 1usize), (16 * 1024, 16), (256 * 1024, 8)] {
            let nesc = run(DiskKind::NescDirect, op, bs, qd);
            let virtio = run(DiskKind::Virtio, op, bs, qd);
            rows.push(vec![
                name.into(),
                format!("{}", bs / 1024),
                qd.to_string(),
                fmt(nesc),
                fmt(virtio),
                format!("{:.2}", nesc / virtio),
            ]);
            json.push(serde_json::json!({
                "op": name,
                "block_kb": bs / 1024,
                "qd": qd,
                "nesc_mbps": nesc,
                "virtio_mbps": virtio,
                "speedup": nesc / virtio,
            }));
        }
    }
    print_table(
        "Sequential I/O on flash (MB/s)",
        &["op", "KB", "QD", "NeSC", "virtio", "speedup"],
        &rows,
    );
    println!("\nexpected: NeSC sustains the SSD's internal rate; the virtio path");
    println!("loses a constant software tax per request — the SSD-era story of §II.");
    emit_json("extension_flash", &serde_json::json!({ "points": json }));
}
