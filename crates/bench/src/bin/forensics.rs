//! Forensics — anomaly-triggered flight-recorder dump (observability).
//!
//! Re-runs the pruning-pressure ablation (fragmented image, prune every
//! 4 ops — the configuration whose miss-interrupt storm trips the SLO
//! watchdog) with span tracing and the flight recorder enabled. When the
//! watchdog first fires, the telemetry layer snapshots the flight ring,
//! the worst-K exemplar span trees, and the active window series into a
//! forensic dump.
//!
//! The harness runs the scenario **twice** with the same seed and
//! asserts the two serialized dumps are byte-identical — the recorder is
//! part of the deterministic surface — then writes:
//!
//! * `results/forensic_dump.json` — the dump (byte-gated golden)
//! * `results/forensic_window_trace.json` — the dump re-exported as a
//!   Chrome/Perfetto trace: exemplar span swimlanes merged with one
//!   counter track per telemetry series.

use nesc_bench::forensic::ForensicDump;
use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::NescConfig;
use nesc_extent::Vlba;
use nesc_hypervisor::prelude::*;
use nesc_sim::{validate_chrome_trace, SimRng};

/// The pruning-pressure trigger (same image layout, seed, and prune
/// cadence as `ablation_prune_pressure` / `nesc_report`), with tracing
/// and the flight recorder on.
fn run_forensic_trigger() -> System {
    let tel = TelemetryConfig::windowed(SimDuration::from_micros(100))
        .capacity(4096)
        .rule_text("core.miss_interrupts above 0 for 3")
        .rule_text("hv.rewalk_p99_ns above 0 for 3 while core.miss_interrupts above 0");
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 256 * 1024;
    let mut sys = SystemBuilder::new()
        .config(cfg)
        .tracing(true)
        .telemetry(tel)
        .flight(FlightConfig::default().capacity(16384))
        .build();
    let vm = sys.create_vm();
    let img = sys.create_image("hot.img", 8 << 20, false).unwrap();
    let other = sys.create_image("interleave.img", 8 << 20, false).unwrap();
    for b in 0..4096u64 {
        sys.host_fs_mut().allocate_range(img, Vlba(b), 1).unwrap();
        sys.host_fs_mut().allocate_range(other, Vlba(b), 1).unwrap();
    }
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    let mut rng = SimRng::seed(99);
    let mut buf = vec![0u8; 4096];
    for i in 0..256u64 {
        if i % 4 == 0 {
            let victim = Vlba(rng.range(0, 252));
            sys.prune_image_mapping(disk, victim);
        }
        let offset = (rng.range(0, 252) / 4) * 4 * 1024;
        sys.read(disk, offset, &mut buf);
    }
    sys.think(SimDuration::from_micros(200));
    sys.telemetry_finish();
    sys
}

/// One run's forensic dump, pretty-serialized (the golden's byte form).
fn dump_string() -> String {
    let sys = run_forensic_trigger();
    let tel = sys.telemetry().expect("telemetry enabled");
    let dump = tel
        .forensic_dump()
        .expect("the prune storm must trip the watchdog");
    serde_json::to_string_pretty(dump).expect("dump serializes")
}

fn main() {
    println!("Forensics: anomaly-triggered flight-recorder dump");
    println!("(prune-pressure trigger, tracing + flight recorder on, same-seed double run)");

    let first = dump_string();
    let second = dump_string();
    assert_eq!(
        first, second,
        "same-seed forensic dumps must be byte-identical"
    );
    println!(
        "\n  double-run check: {} bytes, byte-identical",
        first.len()
    );

    let dump = ForensicDump::parse(&first).expect("dump parses");
    println!(
        "  anomaly: {} (series {}, window {})",
        dump.anomaly_text, dump.anomaly_series, dump.anomaly_window
    );
    println!(
        "  flight ring: {} events retained ({} appended, {} dropped), {} exemplars",
        dump.events.len(),
        dump.total,
        dump.dropped,
        dump.exemplars.len()
    );

    let worst = dump.worst_exemplar().expect("dump has exemplars");
    let from_events = dump
        .breakdown_from_events(worst.seq)
        .expect("worst request's anchors are in the ring");
    let from_spans = ForensicDump::breakdown_from_spans(worst);
    let mut rows = Vec::new();
    for (name, ev_ns) in &from_events {
        let sp_ns = from_spans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or(0);
        assert_eq!(
            *ev_ns, sp_ns,
            "phase `{name}`: event-derived {ev_ns} ns != span-derived {sp_ns} ns"
        );
        rows.push(vec![
            name.to_string(),
            fmt(*ev_ns as f64 / 1000.0),
            fmt(sp_ns as f64 / 1000.0),
        ]);
    }
    let total: u64 = from_events.iter().map(|(_, ns)| ns).sum();
    assert_eq!(
        total, worst.latency_ns,
        "phases must tile the request's latency"
    );
    print_table(
        &format!(
            "Worst request: seq {} on disk {} ({} us end-to-end)",
            worst.seq,
            worst.disk,
            fmt(worst.latency_ns as f64 / 1000.0)
        ),
        &["phase", "events us", "spans us"],
        &rows,
    );
    println!("\n  event-derived and span-derived breakdowns agree exactly.");

    let trace = dump.perfetto_json();
    validate_chrome_trace(&trace).expect("merged trace is well-formed");

    // Write the dump verbatim (its bytes are the golden surface) and the
    // merged Perfetto view beside it.
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = dir.join("forensic_dump.json");
    std::fs::write(&path, &first).expect("write dump");
    println!("\n[results written to {}]", path.display());
    emit_json("forensic_window_trace", &trace);
}
