//! Ablation — block-walk overlap (design choice, paper §V-B).
//!
//! "Since the main performance bottleneck of the unit is the DMA
//! transaction of the next level in the tree, the unit can overlap two
//! translation processes to (almost) hide the DMA latency." This sweep
//! disables the BTLB (every block walks) and varies the number of
//! concurrent walks, measuring translation-limited throughput with two
//! VFs issuing single-block reads.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::{NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::SimTime;
use nesc_storage::{BlockOp, BlockRequest, RequestId};

const OPS: u64 = 800;
const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

fn run(walk_overlap: usize) -> (f64, f64) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.walk_overlap = walk_overlap;
    cfg.btlb_entries = 0; // force a walk on every block
    cfg.capacity_blocks = 256 * 1024;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    // Single-block extents so every walk visits a multi-level tree.
    let vfs: Vec<_> = (0..2u64)
        .map(|v| {
            let tree: ExtentTree = (0..2048u64)
                .map(|i| ExtentMapping::new(Vlba(i * 2), Plba(i * 4 + v), 1))
                .collect();
            let root = tree.serialize(&mut mem.borrow_mut());
            dev.create_vf(root, 4096).unwrap()
        })
        .collect();
    let buf = mem.borrow_mut().alloc(1024, 1024);
    let mut id = 0u64;
    for i in 0..OPS / 2 {
        for &vf in &vfs {
            id += 1;
            dev.submit(
                SimTime::ZERO,
                vf,
                BlockRequest::new(RequestId(id), BlockOp::Read, Vlba((i % 2048) * 2), 1),
                buf,
            );
        }
    }
    let outs = dev.advance(HORIZON);
    let makespan = outs.iter().map(NescOutput::at).max().expect("completions");
    let walks = dev.stats().walks;
    let kops = OPS as f64 / makespan.as_secs_f64() / 1e3;
    (kops, walks as f64 / OPS as f64)
}

fn main() {
    println!("Ablation: block-walk overlap vs translation-limited throughput");
    println!("(BTLB disabled, 1-block extents, depth-2 trees, 2 VFs)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut base = 0.0;
    for overlap in [1usize, 2, 4, 8] {
        let (kops, walks_per_op) = run(overlap);
        if overlap == 1 {
            base = kops;
        }
        rows.push(vec![
            overlap.to_string(),
            fmt(kops),
            format!("{:.2}", kops / base),
            format!("{walks_per_op:.1}"),
        ]);
        json.push(serde_json::json!({
            "overlap": overlap,
            "kops": kops,
            "speedup_vs_1": kops / base,
        }));
    }
    print_table(
        "Walk-overlap sweep",
        &["walk slots", "k-reads/s", "speedup", "walks/op"],
        &rows,
    );
    println!("\nexpected: going 1 -> 2 slots hides most of the tree-DMA latency");
    println!("(the prototype's choice); more slots saturate the PCIe read path.");
    emit_json(
        "ablation_walk_overlap",
        &serde_json::json!({ "points": json }),
    );
}
