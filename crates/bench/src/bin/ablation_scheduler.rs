//! Ablation — round-robin multiplexer fairness (paper §V-A).
//!
//! "NeSC dequeues client requests in a round-robin manner in order to
//! prevent client starvation." This harness runs an asymmetric pair of
//! tenants — a bandwidth hog issuing 256 KiB requests and a
//! latency-sensitive client issuing 4 KiB requests — and reports the
//! small client's latency alone vs. sharing the device, plus the Jain
//! fairness index of the two tenants' delivered bandwidth shares.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::{FuncId, NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::{SimDuration, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId};

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);
const SMALL_OPS: u64 = 64;
const HOG_OPS: u64 = 64;

fn setup(with_hog: bool) -> (NescDevice, FuncId, Option<FuncId>, u64) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 512 * 1024;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let make = |dev: &mut NescDevice, mem: &Rc<RefCell<HostMemory>>, base: u64| {
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(base), 128 * 1024)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        dev.create_vf(root, 128 * 1024).unwrap()
    };
    let small = make(&mut dev, &mem, 0);
    let hog = with_hog.then(|| make(&mut dev, &mem, 128 * 1024));
    let buf = mem.borrow_mut().alloc(256 * 1024, 4096);
    (dev, small, hog, buf)
}

/// Returns (small client's mean latency in µs, small MB/s, hog MB/s).
fn run(with_hog: bool) -> (f64, f64, f64) {
    let (mut dev, small, hog, buf) = setup(with_hog);
    // The small client issues 4 KiB reads paced 20 µs apart; the hog
    // floods 256 KiB reads back to back from t=0.
    let mut id = 0u64;
    if let Some(h) = hog {
        for i in 0..HOG_OPS {
            id += 1;
            dev.submit(
                SimTime::ZERO,
                h,
                BlockRequest::new(RequestId(1_000 + id), BlockOp::Read, Vlba(i * 256), 256),
                buf,
            );
        }
    }
    let mut issue_times = Vec::new();
    for i in 0..SMALL_OPS {
        let t = SimTime::ZERO + SimDuration::from_micros(20) * i;
        issue_times.push((RequestId(i + 1), t));
        dev.submit(
            t,
            small,
            BlockRequest::new(RequestId(i + 1), BlockOp::Read, Vlba(i * 4), 4),
            buf,
        );
    }
    let outs = dev.advance(HORIZON);
    let mut small_lat = 0.0;
    let mut small_done = SimTime::ZERO;
    let mut hog_done = SimTime::ZERO;
    for o in &outs {
        if let NescOutput::Completion { at, id, .. } = o {
            if id.0 <= SMALL_OPS {
                let issued = issue_times[(id.0 - 1) as usize].1;
                small_lat += at.saturating_since(issued).as_micros_f64();
                small_done = small_done.max(*at);
            } else {
                hog_done = hog_done.max(*at);
            }
        }
    }
    let small_mbps = (SMALL_OPS * 4 * 1024) as f64 / 1e6 / small_done.as_secs_f64().max(1e-12);
    let hog_mbps = if with_hog {
        (HOG_OPS * 256 * 1024) as f64 / 1e6 / hog_done.as_secs_f64().max(1e-12)
    } else {
        0.0
    };
    (small_lat / SMALL_OPS as f64, small_mbps, hog_mbps)
}

fn jain(shares: &[f64]) -> f64 {
    let sum: f64 = shares.iter().sum();
    let sq: f64 = shares.iter().map(|s| s * s).sum();
    sum * sum / (shares.len() as f64 * sq)
}

fn main() {
    println!("Ablation: round-robin VF scheduling under asymmetric tenants");
    let (alone_lat, alone_mbps, _) = run(false);
    let (shared_lat, shared_mbps, hog_mbps) = run(true);
    let rows = vec![
        vec![
            "small client alone".into(),
            fmt(alone_lat),
            fmt(alone_mbps),
            "-".into(),
        ],
        vec![
            "small + 256KB hog".into(),
            fmt(shared_lat),
            fmt(shared_mbps),
            fmt(hog_mbps),
        ],
    ];
    print_table(
        "Fairness",
        &["scenario", "small mean lat us", "small MB/s", "hog MB/s"],
        &rows,
    );
    let slowdown = shared_lat / alone_lat;
    // Shares normalized by demand: the small client asks for 1/64th of the
    // hog's bytes; fairness is over per-request service opportunity.
    let fairness = jain(&[shared_mbps * 64.0, hog_mbps]);
    println!("\nsmall-client slowdown next to the hog: {slowdown:.1}x");
    println!("Jain fairness of demand-normalized shares: {fairness:.3} (1.0 = perfectly fair)");
    println!("round-robin bounds the hog's impact: the small client is delayed by at most");
    println!("one in-flight hog request per turn, not starved behind the whole hog queue.");
    emit_json(
        "ablation_scheduler",
        &serde_json::json!({
            "alone_latency_us": alone_lat,
            "shared_latency_us": shared_lat,
            "slowdown": slowdown,
            "jain_fairness": fairness,
            "small_mbps_shared": shared_mbps,
            "hog_mbps": hog_mbps,
        }),
    );
}
