//! Ablation — extent-tree depth vs translation latency (paper §IV-B).
//!
//! "The key benefit of extent trees is that their depth is not fixed but
//! rather depends on the mapping itself." This sweep fragments a file
//! from one extent (depth-1 tree, like ext4 mapping a 100MB file with a
//! single extent) up to thousands (depth-3), and measures the cold
//! translation cost — each extra level is one more host-memory DMA on the
//! walk path.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::{NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::{SimRng, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId};

const OPS: u64 = 300;
const FILE_BLOCKS: u64 = 16 * 1024;
const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

/// Splits the file into `extents` equal pieces, physically shuffled so
/// nothing merges.
fn tree_with_extents(extents: u64) -> ExtentTree {
    let span = FILE_BLOCKS / extents;
    (0..extents)
        .map(|i| {
            // Reverse physical order prevents adjacent merging.
            let phys = (extents - 1 - i) * span;
            ExtentMapping::new(Vlba(i * span), Plba(phys), span)
        })
        .collect()
}

fn run(extents: u64) -> (u32, f64, f64) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.btlb_entries = 0; // cold translations only
    cfg.capacity_blocks = FILE_BLOCKS * 2;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let tree = tree_with_extents(extents);
    let depth = tree.serialized_depth();
    let root = tree.serialize(&mut mem.borrow_mut());
    let vf = dev.create_vf(root, FILE_BLOCKS).unwrap();
    let buf = mem.borrow_mut().alloc(1024, 1024);
    let mut rng = SimRng::seed(7);
    let mut t = SimTime::ZERO;
    let mut latencies = 0.0f64;
    for i in 0..OPS {
        let lba = Vlba(rng.range(0, FILE_BLOCKS));
        dev.submit(
            t,
            vf,
            BlockRequest::new(RequestId(i), BlockOp::Read, lba, 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        let done = outs.iter().map(NescOutput::at).max().expect("completion");
        latencies += done.saturating_since(t).as_micros_f64();
        t = done;
    }
    let mean_walk_depth = dev.stats().mean_walk_depth();
    (depth, mean_walk_depth, latencies / OPS as f64)
}

fn main() {
    println!("Ablation: extent-tree fragmentation vs cold translation latency");
    println!("(BTLB disabled; one random 1KB read at a time)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for extents in [1u64, 16, 64, 512, 8192] {
        let (depth, walked, lat_us) = run(extents);
        rows.push(vec![
            extents.to_string(),
            depth.to_string(),
            format!("{walked:.2}"),
            fmt(lat_us),
        ]);
        json.push(serde_json::json!({
            "extents": extents,
            "tree_depth": depth,
            "mean_walk_levels": walked,
            "mean_read_latency_us": lat_us,
        }));
    }
    print_table(
        "Tree-depth sweep",
        &["extents", "tree depth", "levels walked", "read latency us"],
        &rows,
    );
    println!("\nexpected: latency grows by roughly one tree-node DMA per extra level,");
    println!("which is why NeSC leans on extent coalescing (and the BTLB) so hard.");
    emit_json(
        "ablation_tree_depth",
        &serde_json::json!({ "points": json }),
    );
}
