//! nesc-report — the telemetry dashboard and its machine-readable golden.
//!
//! Runs two deterministic scenarios through the perfmon sampler:
//!
//! 1. **mixed** — three NeSC VFs under a seeded mixed read/write workload;
//!    renders a per-VF dashboard (sparkline request rates, latency
//!    percentiles, a per-window table) and writes the full time series to
//!    `results/telemetry_mixed.json`, which `scripts/check.sh` gates
//!    byte-for-byte.
//! 2. **prune-pressure** — the tree-pruning ablation configuration with an
//!    SLO watchdog attached; sustained miss-interrupt traffic must trip at
//!    least one deterministic anomaly, shown in the dashboard and recorded
//!    in the golden.
//!
//! Also exports the merged Perfetto view (`results/telemetry_trace.json`):
//! the mixed run's span trace with the sampler's counter tracks merged in,
//! and the raw CSV (`results/telemetry_mixed.csv`).

use std::fs;

use nesc_bench::{emit_json, print_table};
use nesc_core::NescConfig;
use nesc_extent::Vlba;
use nesc_hypervisor::prelude::*;
use nesc_sim::{perfmon, SimRng};

const INTERVAL_US: u64 = 50;
const VFS: usize = 3;
const REQUESTS: u64 = 240;

fn mixed_system() -> (System, Vec<DiskId>) {
    let cfg = TelemetryConfig::windowed(SimDuration::from_micros(INTERVAL_US))
        .capacity(4096)
        // A latency SLO that healthy traffic must not trip.
        .rule_text("hv.vf0.p99_ns above 2000000 for 3");
    let mut sys = SystemBuilder::new()
        .capacity_blocks(256 * 1024)
        .max_vfs(8)
        .tracing(true)
        .telemetry(cfg)
        .build();
    let disks = (0..VFS)
        .map(|i| {
            sys.quick_disk(DiskKind::NescDirect, &format!("vf{i}.img"), 8 << 20)
                .disk
        })
        .collect();
    (sys, disks)
}

fn run_mixed(sys: &mut System, disks: &[DiskId]) {
    let mut rng = SimRng::seed(2016);
    let sizes = [2048u64, 4096, 8192, 16384];
    let mut buf = vec![0u8; 16384];
    for _ in 0..REQUESTS {
        let d = disks[rng.range(0, disks.len() as u64) as usize];
        let bytes = sizes[rng.range(0, sizes.len() as u64) as usize] as usize;
        let offset = rng.range(0, (8 << 20) / 16384) * 16384;
        if rng.range(0, 100) < 60 {
            sys.read(d, offset, &mut buf[..bytes]);
        } else {
            sys.write(d, offset, &buf[..bytes]);
        }
        sys.think(SimDuration::from_micros(rng.range(1, 20)));
    }
    // Idle past the open window so the tail is committed, then drop the
    // partial window.
    sys.think(SimDuration::from_micros(2 * INTERVAL_US));
    sys.telemetry_finish();
}

/// The pruning-pressure ablation configuration (fragmented image, prune
/// every 4 ops) with the SLO watchdog listening for the resulting
/// miss-interrupt storm.
fn run_prune_pressure() -> System {
    let tel = TelemetryConfig::windowed(SimDuration::from_micros(100))
        .capacity(4096)
        .rule_text("core.miss_interrupts above 0 for 3")
        .rule_text("hv.rewalk_p99_ns above 0 for 3 while core.miss_interrupts above 0");
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 256 * 1024;
    let mut sys = SystemBuilder::new().config(cfg).telemetry(tel).build();
    let vm = sys.create_vm();
    let img = sys.create_image("hot.img", 8 << 20, false).unwrap();
    let other = sys.create_image("interleave.img", 8 << 20, false).unwrap();
    for b in 0..4096u64 {
        sys.host_fs_mut().allocate_range(img, Vlba(b), 1).unwrap();
        sys.host_fs_mut().allocate_range(other, Vlba(b), 1).unwrap();
    }
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    let mut rng = SimRng::seed(99);
    let mut buf = vec![0u8; 4096];
    for i in 0..256u64 {
        if i % 4 == 0 {
            let victim = Vlba(rng.range(0, 252));
            sys.prune_image_mapping(disk, victim);
        }
        let offset = (rng.range(0, 252) / 4) * 4 * 1024;
        sys.read(disk, offset, &mut buf);
    }
    sys.think(SimDuration::from_micros(200));
    sys.telemetry_finish();
    sys
}

/// Renders `values` as one bar character per window (most recent 64).
fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let tail = &values[values.len().saturating_sub(64)..];
    let max = tail.iter().copied().max().unwrap_or(0);
    tail.iter()
        .map(|&v| {
            if max == 0 {
                BARS[0]
            } else {
                BARS[(v as usize * 7) / max as usize]
            }
        })
        .collect()
}

fn series_values(sampler: &nesc_sim::Sampler, name: &str) -> Vec<u64> {
    sampler
        .series_by_name(name)
        .map(|s| s.samples().map(|(_, v)| v).collect())
        .unwrap_or_default()
}

fn anomalies_json(events: &[AnomalyEvent]) -> serde_json::Value {
    serde_json::Value::Array(
        events
            .iter()
            .map(|a| {
                serde_json::json!({
                    "rule": a.rule.clone(),
                    "rule_index": a.rule_index,
                    "text": a.text.clone(),
                    "series": a.series.clone(),
                    "window": a.window,
                    "at_ns": a.at.as_nanos(),
                    "value": a.value,
                    "consecutive": a.consecutive,
                })
            })
            .collect(),
    )
}

fn print_anomalies(title: &str, events: &[AnomalyEvent]) {
    println!("\n--- {title}: anomalies ---");
    if events.is_empty() {
        println!("  (none)");
        return;
    }
    for a in events.iter().take(5) {
        println!(
            "  window {:>4} @ {:>8} us  {} = {}  [rule {}: {}]",
            a.window,
            a.at.as_nanos() / 1_000,
            a.series,
            a.value,
            a.rule_index,
            a.text
        );
    }
}

fn main() {
    println!("nesc-report: deterministic telemetry dashboard");

    // ------------------------------------------------------- mixed run
    let (mut sys, disks) = mixed_system();
    run_mixed(&mut sys, &disks);
    let spans = sys.take_spans();
    let tel = sys.telemetry().expect("telemetry enabled");
    let sampler = tel.sampler();
    let windows = sampler.closed_windows();
    println!(
        "\nmixed workload: {} VFs, {} requests, {} windows of {} us",
        VFS, REQUESTS, windows, INTERVAL_US
    );

    // Per-VF summary with request-rate sparklines.
    let mut rows = Vec::new();
    for (i, _) in disks.iter().enumerate() {
        let reqs = series_values(sampler, &format!("hv.vf{i}.requests"));
        let bytes: u64 = series_values(sampler, &format!("hv.vf{i}.bytes"))
            .iter()
            .sum();
        let p99 = series_values(sampler, &format!("hv.vf{i}.p99_ns"))
            .into_iter()
            .max()
            .unwrap_or(0);
        rows.push(vec![
            format!("vf{i}"),
            reqs.iter().sum::<u64>().to_string(),
            (bytes >> 10).to_string(),
            (p99 / 1_000).to_string(),
            sparkline(&reqs),
        ]);
    }
    print_table(
        "Per-VF accounting (whole run)",
        &["vf", "requests", "KiB", "max p99 us", "requests/window"],
        &rows,
    );

    // Per-window tail: the last 12 windows in detail.
    let mut rows = Vec::new();
    let first = windows.saturating_sub(12);
    for w in first..windows {
        let mut row = vec![
            w.to_string(),
            (sampler.window_end(w).as_nanos() / 1_000).to_string(),
        ];
        for i in 0..VFS {
            let v = |suffix: &str| {
                sampler
                    .series_by_name(&format!("hv.vf{i}.{suffix}"))
                    .and_then(|s| s.value_at(w))
                    .unwrap_or(0)
            };
            row.push(v("requests").to_string());
            row.push((v("p99_ns") / 1_000).to_string());
        }
        rows.push(row);
    }
    print_table(
        "Last 12 windows",
        &[
            "window", "end us", "vf0 req", "vf0 p99", "vf1 req", "vf1 p99", "vf2 req", "vf2 p99",
        ],
        &rows,
    );

    // Device-utilization sparklines.
    println!("\n--- utilization (ppm per window) ---");
    for name in [
        "core.btlb_hit_ppm",
        "core.walk_busy_ppm",
        "storage.media_util_ppm",
        "pcie.link_up_util_ppm",
        "pcie.link_down_util_ppm",
    ] {
        println!("  {name:<26} {}", sparkline(&series_values(sampler, name)));
    }
    print_anomalies("mixed", tel.anomalies());

    let mixed_series = perfmon::series_json(sampler);
    let mixed_digest = format!("{:016x}", perfmon::digest_hash(sampler));
    let mixed_anomalies = anomalies_json(tel.anomalies());

    // CSV + Perfetto exports (artifacts, not byte-gated).
    let _ = fs::create_dir_all("results");
    let _ = fs::write("results/telemetry_mixed.csv", perfmon::series_csv(sampler));
    let mut trace = chrome_trace_json(&spans);
    perfmon::merge_counter_tracks(&mut trace, sampler);
    emit_json("telemetry_trace", &trace);

    // --------------------------------------------- prune-pressure run
    let sys = run_prune_pressure();
    let tel = sys.telemetry().expect("telemetry enabled");
    println!(
        "\nprune-pressure ablation: {} miss interrupts, rewalk storm under watch",
        sys.device().stats().miss_interrupts
    );
    println!(
        "  core.miss_interrupts       {}",
        sparkline(&series_values(tel.sampler(), "core.miss_interrupts"))
    );
    println!(
        "  hv.rewalk_p99_ns           {}",
        sparkline(&series_values(tel.sampler(), "hv.rewalk_p99_ns"))
    );
    print_anomalies("prune-pressure", tel.anomalies());
    assert!(
        !tel.anomalies().is_empty(),
        "prune pressure must trip the watchdog deterministically"
    );

    emit_json(
        "telemetry_mixed",
        &serde_json::json!({
            "series": mixed_series,
            "anomalies": mixed_anomalies,
            "digest": mixed_digest,
            "prune_pressure": serde_json::json!({
                "miss_interrupts": sys.device().stats().miss_interrupts,
                "rewalks": series_values(tel.sampler(), "hv.rewalks").iter().sum::<u64>(),
                "anomalies": anomalies_json(tel.anomalies()),
            }),
        }),
    );
}
