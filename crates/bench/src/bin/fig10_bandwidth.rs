//! Fig. 10 — raw bandwidth for reads (top) and writes (bottom) across
//! block sizes, on all four paths.
//!
//! Paper results being reproduced: "for reads smaller than 16KB, NeSC
//! obtained bandwidth close to that of the baseline and outperforms virtio
//! by over 2.5×"; "NeSC's write bandwidth is consistently and
//! substantially better than virtio and emulation, peaking at over 3× for
//! 32KB block sizes"; "for very large block sizes (over 2MB), the
//! bandwidths delivered by NeSC and virtio converge".
//!
//! The sweep therefore covers the figure's 512 B – 32 KiB range plus
//! 256 KiB and 2 MiB rows for the convergence claim. dd runs O_DIRECT
//! style (one request outstanding), as in the paper's raw-device
//! measurement.

use nesc_bench::{all_paths, emit_json, fmt, paper_block_sizes, print_table, standard_system};
use nesc_storage::BlockOp;
use nesc_workloads::{Dd, DdMode, TenantIo, Workload};

const IMAGE_BYTES: u64 = 256 << 20;
const TOTAL_PER_POINT: u64 = 8 << 20; // bytes moved per measured point

fn sweep_sizes() -> Vec<u64> {
    let mut v = paper_block_sizes();
    v.push(256 * 1024);
    v.push(2 * 1024 * 1024);
    v
}

fn measure(op: BlockOp) -> Vec<Vec<f64>> {
    let sizes = sweep_sizes();
    let mut per_path = Vec::new();
    for (kind, _) in all_paths() {
        let (mut sys, _vm, disk) = standard_system(kind, IMAGE_BYTES);
        let mut mbps = Vec::new();
        for &bs in &sizes {
            let count = (TOTAL_PER_POINT / bs).max(4);
            let rep =
                Dd::new(op, bs, count, DdMode::Sync).run(&mut TenantIo::attached(&mut sys, disk));
            mbps.push(rep.mbps());
        }
        per_path.push(mbps);
    }
    per_path
}

fn rows_for(sizes: &[u64], per_path: &[Vec<f64>]) -> Vec<Vec<String>> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &bs)| {
            let label = if bs < 1024 {
                format!("{:.1}", bs as f64 / 1024.0)
            } else {
                format!("{}", bs / 1024)
            };
            let mut row = vec![label];
            for p in per_path {
                row.push(fmt(p[i]));
            }
            row
        })
        .collect()
}

fn main() {
    println!("Fig. 10 reproduction: raw bandwidth (MB/s) vs block size (KB)");
    let sizes = sweep_sizes();
    let labels: Vec<&str> = all_paths().iter().map(|&(_, l)| l).collect();
    let mut headers = vec!["KB"];
    headers.extend(&labels);

    let read = measure(BlockOp::Read);
    print_table("Read bandwidth [MB/s]", &headers, &rows_for(&sizes, &read));
    let write = measure(BlockOp::Write);
    print_table(
        "Write bandwidth [MB/s]",
        &headers,
        &rows_for(&sizes, &write),
    );

    // Headline claims. Column order matches all_paths(): NeSC, virtio,
    // Emulation, Host.
    let at = |data: &[Vec<f64>], bs: u64, path: usize| {
        let i = sizes.iter().position(|&s| s == bs).unwrap();
        data[path][i]
    };
    println!("\nheadline:");
    println!(
        "  read 8KB   NeSC/virtio: {:.2}x (paper: >2.5x below 16KB)",
        at(&read, 8192, 0) / at(&read, 8192, 1)
    );
    println!(
        "  write 32KB NeSC/virtio: {:.2}x (paper: ~3x peak)",
        at(&write, 32768, 0) / at(&write, 32768, 1)
    );
    println!(
        "  write 32KB NeSC/emulation: {:.2}x (paper: ~6x)",
        at(&write, 32768, 0) / at(&write, 32768, 2)
    );
    println!(
        "  read 2MB   NeSC/virtio: {:.2}x (paper: converged ~1x)",
        at(&read, 2 * 1024 * 1024, 0) / at(&read, 2 * 1024 * 1024, 1)
    );
    println!(
        "  read 32KB  NeSC/host: {:.2}x (paper: ~0.9x)",
        at(&read, 32768, 0) / at(&read, 32768, 3)
    );

    emit_json(
        "fig10_bandwidth",
        &serde_json::json!({
            "block_sizes": sizes,
            "paths": labels,
            "read_mbps": read,
            "write_mbps": write,
        }),
    );
}
