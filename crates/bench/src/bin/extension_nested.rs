//! Extension study — nested virtualization (paper §IV-A's aside).
//!
//! "A VF is not allowed to create nested VFs (although, in principle,
//! such a mechanism can be implemented to support nested virtualization)."
//! The model implements that mechanism: a nested VF's extent tree maps
//! into its parent's vLBA space and the device composes the translations.
//! This harness prices the composition: per nesting level, translation
//! pays one more tree consultation (BTLB hit in the common case, a full
//! walk on cold extents).

use std::cell::RefCell;
use std::rc::Rc;

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::{FuncId, NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::{SimDuration, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId};

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);
const OPS: u64 = 128;
const DISK_BLOCKS: u64 = 16 * 1024;

/// Builds a chain of `depth` nested VFs (depth 0 = plain VF) and returns
/// the innermost function. Every level is identity-fragmented into
/// 64-block extents so walks are non-trivial.
fn nested_chain(mem: &Rc<RefCell<HostMemory>>, dev: &mut NescDevice, depth: usize) -> FuncId {
    let fragmented = |shift: u64| -> ExtentTree {
        (0..DISK_BLOCKS / 64)
            .map(|i| {
                // A non-identity shuffle so each level really remaps.
                let src = (i + shift) % (DISK_BLOCKS / 64);
                ExtentMapping::new(Vlba(i * 64), Plba(src * 64), 64)
            })
            .collect()
    };
    let root = fragmented(1).serialize(&mut mem.borrow_mut());
    let mut func = dev.create_vf(root, DISK_BLOCKS).unwrap();
    for level in 0..depth {
        let root = fragmented(level as u64 + 2).serialize(&mut mem.borrow_mut());
        func = dev.create_nested_vf(func, root, DISK_BLOCKS).unwrap();
    }
    func
}

/// Mean 4 KiB read latency (µs) and walks/op at the given nesting depth.
fn run(depth: usize, btlb_entries: usize) -> (f64, f64) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = DISK_BLOCKS * 2;
    cfg.btlb_entries = btlb_entries;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let func = nested_chain(&mem, &mut dev, depth);
    let buf = mem.borrow_mut().alloc(4096, 4096);
    let mut t = SimTime::ZERO;
    let mut total_us = 0.0;
    for i in 0..OPS {
        // Stride through the disk so every op lands in a fresh extent.
        let lba = Vlba((i * 67 * 4) % (DISK_BLOCKS - 4));
        dev.submit(
            t,
            func,
            BlockRequest::new(RequestId(i + 1), BlockOp::Read, lba, 4),
            buf,
        );
        let outs = dev.advance(HORIZON);
        let done = outs.iter().map(NescOutput::at).max().expect("completion");
        total_us += done.saturating_since(t).as_micros_f64();
        t = done + SimDuration::from_micros(1);
    }
    let walks_per_op = dev.stats().walks as f64 / OPS as f64;
    (total_us / OPS as f64, walks_per_op)
}

fn main() {
    println!("Extension: nested virtualization — composed translation cost per level");
    println!("(strided 4KB reads over 64-block extents; depth 0 = plain VF)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for depth in [0usize, 1, 2] {
        let (lat_cold, walks) = run(depth, 0); // BTLB off: every level walks
        let (lat_warm, _) = run(depth, 8); // prototype BTLB
        rows.push(vec![
            (depth + 1).to_string(),
            fmt(lat_cold),
            format!("{walks:.1}"),
            fmt(lat_warm),
        ]);
        json.push(serde_json::json!({
            "levels": depth + 1,
            "cold_latency_us": lat_cold,
            "walks_per_op": walks,
            "warm_latency_us": lat_warm,
        }));
    }
    print_table(
        "Nesting sweep",
        &[
            "translation levels",
            "cold lat us (no BTLB)",
            "walks/op",
            "lat us (8-entry BTLB)",
        ],
        &rows,
    );
    println!("\nexpected: each nesting level adds one tree consultation per block —");
    println!("a full walk when cold, a BTLB hit when warm. The BTLB makes nested");
    println!("virtualization nearly free for extent-local workloads, which is why");
    println!("the paper can wave it through 'in principle'.");
    emit_json("extension_nested", &serde_json::json!({ "points": json }));
}
