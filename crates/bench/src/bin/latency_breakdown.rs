//! Span-derived latency breakdown — the Fig. 9 story, reattributed.
//!
//! Where `fig9_latency` reports *how long* each path takes, this harness
//! reports *where the time goes*, reconstructed **from spans alone**: it
//! runs every path with tracing enabled, collects each request's root
//! span, verifies that the root's direct children exactly partition the
//! end-to-end interval (no unattributed time, no overlap), and prints the
//! per-phase means. It then re-derives the paper's headline ordering
//! (emulation > virtio > NeSC ≈ host) from the span durations and exports
//! one representative request mix as a Chrome/Perfetto trace under
//! `results/`.
//!
//! ```text
//! cargo run -p nesc-bench --bin latency_breakdown
//! ```

use std::collections::BTreeMap;

use nesc_bench::{all_paths, emit_json, fmt, paper_block_sizes, print_table};
use nesc_hypervisor::prelude::*;

const IMAGE_BYTES: u64 = 64 << 20;
const SAMPLES: u64 = 16;

/// Mean per-phase breakdown of one batch of traced requests.
struct Breakdown {
    /// `layer:name` -> mean ns across the batch's requests.
    phases: Vec<(String, f64)>,
    /// Mean end-to-end latency (root span duration), ns.
    total_ns: f64,
    /// Requests in the batch.
    requests: u64,
}

/// Drains the tracer, keeps the request roots, checks the partition
/// invariant on every one, and averages the per-phase child durations.
fn drain_breakdown(sys: &mut System) -> Breakdown {
    let tree = SpanTree::new(sys.take_spans());
    tree.check_nesting().expect("span forest is well-nested");
    let roots: Vec<&Span> = tree.roots().filter(|s| s.name == "request").collect();
    assert!(!roots.is_empty(), "traced batch produced no request roots");
    let mut sums: Vec<(String, u64)> = Vec::new();
    let mut total = 0u64;
    for root in &roots {
        tree.check_partition(root.id)
            .expect("children partition the request");
        let mut child_sum = 0u64;
        for (name, layer, ns) in tree.child_breakdown(root.id) {
            child_sum += ns;
            let key = format!("{layer}:{name}");
            match sums.iter_mut().find(|(k, _)| *k == key) {
                Some((_, t)) => *t += ns,
                None => sums.push((key, ns)),
            }
        }
        assert_eq!(
            child_sum,
            root.duration_ns(),
            "child spans must sum to the end-to-end latency"
        );
        total += root.duration_ns();
    }
    let n = roots.len() as f64;
    Breakdown {
        phases: sums.into_iter().map(|(k, ns)| (k, ns as f64 / n)).collect(),
        total_ns: total as f64 / n,
        requests: roots.len() as u64,
    }
}

/// One traced system per path, pre-warmed so steady-state requests are
/// measured (allocation/miss handling happens during warm-up).
fn traced_system(kind: DiskKind) -> (System, DiskId) {
    let mut sys = SystemBuilder::new().with_trampoline().tracing(true).build();
    let disk = sys.quick_disk(kind, "bd.img", IMAGE_BYTES).disk;
    sys.write(disk, 0, &[0x5Au8; 256 * 1024]);
    // Warm-up spans are not part of the measurement.
    let _ = sys.take_spans();
    (sys, disk)
}

fn measure(kind: DiskKind, bs: u64, write: bool) -> Breakdown {
    let (mut sys, disk) = traced_system(kind);
    let payload = vec![0xC3u8; bs as usize];
    let mut out = vec![0u8; bs as usize];
    for i in 0..SAMPLES {
        let offset = (i * bs) % (128 * 1024);
        if write {
            sys.write(disk, offset, &payload);
        } else {
            sys.read(disk, offset, &mut out);
        }
    }
    drain_breakdown(&mut sys)
}

fn main() {
    println!("Span-derived latency breakdown (Fig. 9 reattributed)");

    // --- Per-path phase tables at 4 KiB writes. ---
    let mut json_paths: Vec<(String, serde_json::Value)> = Vec::new();
    let mut e2e_512: BTreeMap<&'static str, f64> = BTreeMap::new();
    for (kind, label) in all_paths() {
        let bd = measure(kind, 4096, true);
        let rows: Vec<Vec<String>> = bd
            .phases
            .iter()
            .map(|(k, ns)| vec![k.clone(), fmt(*ns / 1000.0), fmt(100.0 * ns / bd.total_ns)])
            .collect();
        print_table(
            &format!("{label} — 4 KiB write, {} requests", bd.requests),
            &["phase", "us", "%"],
            &rows,
        );
        println!(
            "  end-to-end: {} us (children sum exactly)",
            fmt(bd.total_ns / 1000.0)
        );
        let phases: Vec<(String, serde_json::Value)> = bd
            .phases
            .iter()
            .map(|(k, ns)| (k.clone(), serde_json::Value::from(*ns)))
            .collect();
        json_paths.push((
            label.to_string(),
            serde_json::json!({
                "total_ns": bd.total_ns,
                "phases": serde_json::Value::Object(phases),
            }),
        ));
        let small = measure(kind, 512, true);
        e2e_512.insert(label, small.total_ns);
    }

    // --- The Fig. 9 ordering, re-derived from spans alone. ---
    let nesc = e2e_512["NeSC"];
    let virtio = e2e_512["virtio"];
    let emu = e2e_512["Emulation"];
    let host = e2e_512["Host"];
    println!("\nheadline (512B writes, from spans):");
    println!("  NeSC vs host     : {:.2}x  (paper: ~1x)", nesc / host);
    println!("  virtio vs NeSC   : {:.1}x  (paper: >6x)", virtio / nesc);
    println!("  emulation vs NeSC: {:.1}x  (paper: >20x)", emu / nesc);
    assert!(
        emu > virtio && virtio > nesc,
        "span-derived ordering must match Fig. 9: emulation > virtio > NeSC"
    );

    // --- Sweep: end-to-end means per block size, per path. ---
    let sizes = paper_block_sizes();
    let mut sweep_rows = Vec::new();
    let mut sweep_json: Vec<(String, serde_json::Value)> = Vec::new();
    for &bs in &sizes {
        let mut row = vec![format!("{:.1}", bs as f64 / 1024.0)];
        let mut cols: Vec<(String, serde_json::Value)> = Vec::new();
        for (kind, label) in all_paths() {
            let bd = measure(kind, bs, true);
            row.push(fmt(bd.total_ns / 1000.0));
            cols.push((label.to_string(), serde_json::Value::from(bd.total_ns)));
        }
        sweep_rows.push(row);
        sweep_json.push((bs.to_string(), serde_json::Value::Object(cols)));
    }
    let labels: Vec<&str> = all_paths().iter().map(|&(_, l)| l).collect();
    let mut headers = vec!["KB"];
    headers.extend(&labels);
    print_table("Write latency from spans [us]", &headers, &sweep_rows);

    // --- Perfetto export: one request per path, in one trace. ---
    let mut all_spans = Vec::new();
    for (kind, _) in all_paths() {
        let (mut sys, disk) = traced_system(kind);
        sys.write(disk, 0, &[0x11u8; 4096]);
        let mut buf = [0u8; 4096];
        sys.read(disk, 0, &mut buf);
        all_spans.extend(sys.take_spans());
    }
    let doc = nesc_sim::chrome_trace_json(&all_spans);
    let events =
        nesc_sim::validate_chrome_trace(&doc).expect("exported trace must be structurally valid");
    println!(
        "\nPerfetto trace: {events} events from {} spans",
        all_spans.len()
    );
    emit_json("latency_breakdown_trace", &doc);

    emit_json(
        "latency_breakdown",
        &serde_json::json!({
            "samples_per_point": SAMPLES,
            "breakdown_4k_write": serde_json::Value::Object(json_paths),
            "sweep_write_ns": serde_json::Value::Object(sweep_json),
        }),
    );
}
