//! Extension study — the commercial projection.
//!
//! The paper closes its abstract with: "We further show that these
//! performance benefits are limited only by the bandwidth provided by our
//! academic prototype. We expect that NeSC will greatly benefit commercial
//! PCIe SSDs capable of delivering multi-GB/s of bandwidth." This harness
//! quantifies the claim: the same system with a gen3 link and a DMA engine
//! that keeps up, against the same virtio stack.

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::NescConfig;
use nesc_hypervisor::{DiskKind, SystemBuilder};
use nesc_storage::BlockOp;
use nesc_workloads::{Dd, DdMode, TenantIo, Workload};

const IMAGE_BYTES: u64 = 256 << 20;

fn run(cfg: NescConfig, kind: DiskKind, bs: u64, qd: usize) -> f64 {
    let mut sys = SystemBuilder::new().config(cfg).build();
    let disk = sys.quick_disk(kind, "g3.img", IMAGE_BYTES).disk;
    Dd::new(BlockOp::Read, bs, (32 << 20) / bs, DdMode::Pipelined { qd })
        .run(&mut TenantIo::attached(&mut sys, disk))
        .mbps()
}

fn main() {
    println!("Extension: prototype (gen2, ~800MB/s engine) vs commercial (gen3) NeSC");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (bs, qd) in [(4096u64, 16usize), (32768, 16), (262144, 8)] {
        let proto_nesc = run(NescConfig::prototype(), DiskKind::NescDirect, bs, qd);
        let proto_virtio = run(NescConfig::prototype(), DiskKind::Virtio, bs, qd);
        let gen3_nesc = run(NescConfig::gen3(), DiskKind::NescDirect, bs, qd);
        let gen3_virtio = run(NescConfig::gen3(), DiskKind::Virtio, bs, qd);
        rows.push(vec![
            format!("{}", bs / 1024),
            fmt(proto_nesc),
            fmt(gen3_nesc),
            format!("{:.2}", gen3_nesc / proto_nesc),
            format!("{:.2}", proto_nesc / proto_virtio),
            format!("{:.2}", gen3_nesc / gen3_virtio),
        ]);
        json.push(serde_json::json!({
            "block_kb": bs / 1024,
            "prototype_nesc_mbps": proto_nesc,
            "gen3_nesc_mbps": gen3_nesc,
            "gen3_vs_prototype": gen3_nesc / proto_nesc,
            "prototype_speedup_vs_virtio": proto_nesc / proto_virtio,
            "gen3_speedup_vs_virtio": gen3_nesc / gen3_virtio,
        }));
    }
    print_table(
        "Pipelined read bandwidth (MB/s)",
        &[
            "KB",
            "proto NeSC",
            "gen3 NeSC",
            "gen3/proto",
            "proto vs virtio",
            "gen3 vs virtio",
        ],
        &rows,
    );
    println!("\nheadline: on a commercial-class device the NeSC advantage *grows*,");
    println!("because the fixed software overheads it removes are an ever larger");
    println!("fraction of each request — the paper's closing argument.");
    emit_json("extension_gen3", &serde_json::json!({ "points": json }));
}
