//! Ablation — BTLB size (design choice, paper §V-B).
//!
//! The prototype caches the last 8 extents "so the BTLB can maintain at
//! least the last mapping for each of the last 8 VFs it serviced". This
//! sweep varies the entry count with 8 concurrently-active VFs reading
//! fragmented files, showing why 8 entries is the knee: fewer entries
//! thrash across VFs (every block pays a walk), more buys little.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::{NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::SimTime;
use nesc_storage::{BlockOp, BlockRequest, RequestId};

const VFS: u64 = 8;
const OPS_PER_VF: u64 = 200;
const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

/// A fragmented file: every extent is 32 blocks, physically interleaved
/// with other files' extents so nothing coalesces.
fn fragmented_tree(vf: u64, extents: u64) -> ExtentTree {
    (0..extents)
        .map(|i| ExtentMapping::new(Vlba(i * 32), Plba((i * VFS + vf) * 32), 32))
        .collect()
}

fn run(btlb_entries: usize) -> (f64, f64) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.btlb_entries = btlb_entries;
    cfg.capacity_blocks = 256 * 1024;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let extents_per_vf = 64;
    let vfs: Vec<_> = (0..VFS)
        .map(|v| {
            let tree = fragmented_tree(v, extents_per_vf);
            let root = tree.serialize(&mut mem.borrow_mut());
            dev.create_vf(root, extents_per_vf * 32).unwrap()
        })
        .collect();
    let buf = mem.borrow_mut().alloc(4096, 4096);
    // Each VF streams its file sequentially in 4 KiB reads while the
    // multiplexer round-robins across all eight — the access pattern the
    // prototype's "one entry per recent VF" sizing targets: a VF's next
    // request reuses its previous extent only if the BTLB can hold one
    // entry per concurrently-active VF.
    let mut id = 0u64;
    for op in 0..OPS_PER_VF {
        for &vf in &vfs {
            let lba = Vlba((op * 4) % (extents_per_vf * 32 - 4));
            id += 1;
            dev.submit(
                SimTime::ZERO,
                vf,
                BlockRequest::new(RequestId(id), BlockOp::Read, lba, 4),
                buf,
            );
        }
    }
    let outs = dev.advance(HORIZON);
    let makespan = outs
        .iter()
        .map(NescOutput::at)
        .max()
        .expect("requests completed");
    let total_ops = OPS_PER_VF * VFS;
    let mean_us = makespan.as_micros_f64() / total_ops as f64;
    (dev.btlb().hit_rate() * 100.0, mean_us)
}

fn main() {
    println!("Ablation: BTLB entries vs hit rate and translation cost");
    println!("(8 VFs, fragmented 8-block extents, random 4KB reads)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for entries in [0usize, 1, 2, 4, 8, 16, 32] {
        let (hit_rate, mean_us) = run(entries);
        rows.push(vec![
            entries.to_string(),
            format!("{hit_rate:.1}"),
            fmt(mean_us),
        ]);
        json.push(serde_json::json!({
            "entries": entries,
            "hit_rate_pct": hit_rate,
            "mean_service_us": mean_us,
        }));
    }
    print_table(
        "BTLB sweep",
        &["entries", "hit rate %", "mean service us"],
        &rows,
    );
    println!("\nexpected: hit rate collapses below 8 entries (one per active VF)");
    println!("and the prototype's 8-entry choice sits at the knee.");
    emit_json("ablation_btlb", &serde_json::json!({ "points": json }));
}
