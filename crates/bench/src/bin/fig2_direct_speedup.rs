//! Fig. 2 — the motivating experiment: raw write speedup of direct device
//! assignment over virtio as a function of device bandwidth.
//!
//! Paper methodology (§II): "We have emulated such devices by throttling
//! the bandwidth of an in-memory storage device (ramdisk). Notably, due to
//! OS overhead incurred by its software layers, the ramdisk bandwidth
//! peaks at 3.6GB/s." The figure shows the speedup rising from ~1× on slow
//! devices to roughly 2× for multi-GB/s devices.
//!
//! Reproduction: a fast-device configuration (gen3 link, ramdisk-class DMA
//! engine) whose *medium* is throttled to the target bandwidth, written
//! sequentially with page-cache-style merged 512 KiB requests and a small
//! queue depth — buffered `dd` behaviour. The direct path's ceiling
//! emerges from the guest software stack's per-page cost (the "ramdisk
//! peaks at 3.6 GB/s" effect), the virtio path's from the host backend
//! thread.

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::NescConfig;
use nesc_hypervisor::{DiskKind, SystemBuilder};
use nesc_storage::BlockOp;

const IMAGE_BYTES: u64 = 256 << 20;
const REQ_BYTES: u64 = 512 * 1024; // elevator-merged buffered writes
const QD: usize = 4;
const TOTAL: u64 = 64 << 20;

/// A "future fast device": gen3 link, DMA engines that keep up, DRAM
/// medium throttled per sweep point.
fn fast_device() -> NescConfig {
    let mut cfg = NescConfig::gen3();
    cfg.capacity_blocks = (IMAGE_BYTES * 2) / 1024;
    cfg
}

fn run(kind: DiskKind, throttle: u64) -> f64 {
    let mut sys = SystemBuilder::new().config(fast_device()).build();
    let disk = sys.quick_disk(kind, "fig2.img", IMAGE_BYTES).disk;
    sys.device_mut().set_media_throttle(Some(throttle));
    let res = sys.stream(disk, BlockOp::Write, 0, TOTAL, REQ_BYTES, QD);
    res.mbps
}

fn main() {
    println!("Fig. 2 reproduction: direct-assignment speedup over virtio vs device bandwidth");
    let points_mb: Vec<u64> = vec![500, 1000, 1500, 2000, 2500, 3000, 3600, 4500, 6000];
    let mut rows = Vec::new();
    let mut json_points = Vec::new();
    for &mb in &points_mb {
        let direct = run(DiskKind::NescDirect, mb * 1_000_000);
        let virtio = run(DiskKind::Virtio, mb * 1_000_000);
        let speedup = direct / virtio;
        rows.push(vec![
            format!("{mb}"),
            fmt(direct),
            fmt(virtio),
            format!("{speedup:.2}"),
        ]);
        json_points.push(serde_json::json!({
            "device_mbps": mb,
            "direct_mbps": direct,
            "virtio_mbps": virtio,
            "speedup": speedup,
        }));
    }
    print_table(
        "Sequential write throughput",
        &["device MB/s", "direct MB/s", "virtio MB/s", "speedup"],
        &rows,
    );
    let first: f64 = rows.first().unwrap()[3].parse().unwrap();
    let last: f64 = rows.last().unwrap()[3].parse().unwrap();
    println!("\nheadline: speedup grows {first:.2}x -> {last:.2}x across the sweep");
    println!("          (paper: ~1x on slow devices, ~2x for multi-GB/s devices)");
    let direct_peak: f64 = rows.last().unwrap()[1].parse().unwrap();
    println!(
        "          direct-path software ceiling: {:.1} GB/s (paper ramdisk: 3.6 GB/s)",
        direct_peak / 1000.0
    );

    emit_json(
        "fig2_direct_speedup",
        &serde_json::json!({ "points": json_points }),
    );
}
