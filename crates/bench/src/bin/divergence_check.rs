//! Runtime divergence self-check gate for `scripts/check.sh`.
//!
//! Runs the mixed multi-VF workload **twice from the same seed** and
//! compares the full run digests (event sequence, span tree, metrics
//! registry at every checkpoint). Identical digests exit 0; any
//! difference prints the first diverging event and exits 1 — that means
//! a nondeterminism bug escaped `nesc-lint`'s static rules.
//!
//! As a sanity check that the harness can actually *see* divergence, it
//! also digests a run from a different seed and requires that the
//! comparison reports a difference (exit 2 if it does not — a blind
//! detector would pass everything).
//!
//! ```text
//! cargo run -p nesc-bench --bin divergence_check [seed]
//! ```

use std::process::ExitCode;

use nesc_sim::selfcheck::{first_divergence, self_check};
use nesc_workloads::MixedVfSelfCheck;

fn main() -> ExitCode {
    // "NeSC" in ASCII + the PR number; fixed so CI always compares the
    // same pair of runs.
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(0x4E65_5343_0003);

    let workload = MixedVfSelfCheck::default();
    println!(
        "divergence_check: {} requests over {} VFs ({}% reads), checkpoint every {}",
        workload.requests, workload.vfs, workload.read_percent, workload.checkpoint_every
    );

    match self_check(seed, |s| workload.digest(s)) {
        Ok(hash) => println!(
            "divergence_check: same-seed double run identical (seed {seed:#x}, final hash {hash:#018x})"
        ),
        Err(d) => {
            eprintln!("divergence_check: FAILED — same seed, different runs");
            eprintln!("divergence_check: {d}");
            return ExitCode::FAILURE;
        }
    }

    // Detector sanity: a different seed must produce a visible divergence.
    let other = workload.digest(seed ^ 0x9E37_79B9_7F4A_7C15);
    match first_divergence(&workload.digest(seed), &other) {
        Some(d) => println!("divergence_check: cross-seed sanity OK — {d}"),
        None => {
            eprintln!(
                "divergence_check: FAILED — different seeds produced identical digests; \
                 the detector is blind"
            );
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
