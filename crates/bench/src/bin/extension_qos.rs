//! Extension study — per-VF QoS priorities (paper §IV-D).
//!
//! "NeSC can be extended to enforce the hypervisor's QoS policy by
//! modifying its DMA engine to support different priorities for each VF."
//! The model implements priority classes in the VF multiplexer; this
//! harness measures what a latency-sensitive tenant gains from priority 0
//! while bulk tenants hammer the device.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::{FuncId, NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::{SimDuration, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId};

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);
const BULK_TENANTS: u64 = 4;
const PROBES: u64 = 32;

fn setup() -> (Rc<RefCell<HostMemory>>, NescDevice, Vec<FuncId>, FuncId) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 512 * 1024;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let mut make = |base: u64| {
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(base), 64 * 1024)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        dev.create_vf(root, 64 * 1024).unwrap()
    };
    let bulk: Vec<FuncId> = (0..BULK_TENANTS).map(|i| make(i * 64 * 1024)).collect();
    let probe = make(BULK_TENANTS * 64 * 1024);
    (mem, dev, bulk, probe)
}

/// Probe latency (mean µs) with the probe VF at the given priority. Each
/// round queues a fresh 4-deep backlog of 128 KiB bulk reads per tenant,
/// then the probe arrives: its priority decides whether it jumps the
/// dispatch queue or waits behind the round's backlog.
fn run(probe_priority: u8) -> f64 {
    let (mem, mut dev, bulk, probe) = setup();
    dev.set_priority(probe, probe_priority).unwrap();
    let buf = mem.borrow_mut().alloc(256 * 1024, 4096);
    let mut total_us = 0.0;
    let mut t = SimTime::ZERO;
    let mut req = 10_000u64;
    for i in 0..PROBES {
        for round in 0..4u64 {
            for &vf in &bulk {
                req += 1;
                dev.submit(
                    t,
                    vf,
                    BlockRequest::new(
                        RequestId(req),
                        BlockOp::Read,
                        Vlba(((i * 4 + round) * 128) % 60_000),
                        128,
                    ),
                    buf,
                );
            }
        }
        dev.submit(
            t,
            probe,
            BlockRequest::new(RequestId(1 + i), BlockOp::Read, Vlba(i * 4), 4),
            buf,
        );
        let outs = dev.advance(HORIZON);
        let probe_done = outs
            .iter()
            .find_map(|o| match o {
                NescOutput::Completion { at, id, .. } if id.0 == 1 + i => Some(*at),
                _ => None,
            })
            .expect("probe completes");
        total_us += probe_done.saturating_since(t).as_micros_f64();
        // Next round starts after everything drained.
        t = outs.iter().map(NescOutput::at).max().unwrap_or(t) + SimDuration::from_micros(10);
    }
    total_us / PROBES as f64
}

fn main() {
    println!("Extension: per-VF QoS priorities under {BULK_TENANTS} bulk tenants");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for prio in [0u8, 1, 3] {
        let lat = run(prio);
        rows.push(vec![prio.to_string(), fmt(lat)]);
        json.push(serde_json::json!({ "priority": prio, "probe_latency_us": lat }));
    }
    print_table(
        "Latency-sensitive tenant, 4 KiB reads",
        &["probe priority", "mean latency us"],
        &rows,
    );
    let p0: f64 = rows[0][1].parse().unwrap();
    let p3: f64 = rows[2][1].parse().unwrap();
    println!(
        "\npriority 0 cuts the probe's latency {:.1}x vs best-effort class 3",
        p3 / p0
    );
    emit_json("extension_qos", &serde_json::json!({ "points": json }));
}
