//! Fig. 12 — application-level speedups of NeSC over (a) full device
//! emulation and (b) virtio, for the macrobenchmarks of Table II:
//! SysBench OLTP (MySQL), Postmark, and SysBench File I/O.
//!
//! Each application runs in a guest whose disk is attached through each
//! path, with the guest's own filesystem on the virtual disk (exactly the
//! paper's setup: "The virtual storage device is stored as an image file
//! (with ext4 filesystem) on the hypervisor's filesystem, and the
//! hypervisor maps the file to the VM using either of the mapping
//! facilities: virtio, emulation or a NeSC VF").

use nesc_bench::{emit_json, print_table, standard_system};
use nesc_hypervisor::DiskKind;
use nesc_workloads::{FileIo, Oltp, Postmark, TenantIo, Workload, WorkloadReport};

const IMAGE_BYTES: u64 = 192 << 20;

fn run_app(app: &str, kind: DiskKind) -> WorkloadReport {
    let (mut sys, _vm, disk) = standard_system(kind, IMAGE_BYTES);
    let mut io = TenantIo::attached(&mut sys, disk);
    match app {
        "OLTP" => Oltp {
            rows: 20_000,
            transactions: 150,
            buffer_pool_pages: 64,
            ..Default::default()
        }
        .run(&mut io),
        "Postmark" => Postmark {
            initial_files: 48,
            transactions: 150,
            ..Default::default()
        }
        .run(&mut io),
        "SysBench" => FileIo {
            files: 8,
            file_bytes: 2 << 20,
            ops: 250,
            ..Default::default()
        }
        .run(&mut io),
        other => panic!("unknown app {other}"),
    }
}

fn main() {
    println!("Fig. 12 reproduction: application speedups with NeSC");
    let apps = ["OLTP", "Postmark", "SysBench"];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for app in apps {
        let nesc = run_app(app, DiskKind::NescDirect);
        let virtio = run_app(app, DiskKind::Virtio);
        let emu = run_app(app, DiskKind::Emulated);
        let s_emu = nesc.ops_per_sec() / emu.ops_per_sec();
        let s_virtio = nesc.ops_per_sec() / virtio.ops_per_sec();
        rows.push(vec![
            app.to_string(),
            format!("{:.0}", nesc.ops_per_sec()),
            format!("{:.0}", virtio.ops_per_sec()),
            format!("{:.0}", emu.ops_per_sec()),
            format!("{s_emu:.2}"),
            format!("{s_virtio:.2}"),
        ]);
        json.push(serde_json::json!({
            "app": app,
            "nesc_ops_per_sec": nesc.ops_per_sec(),
            "virtio_ops_per_sec": virtio.ops_per_sec(),
            "emulation_ops_per_sec": emu.ops_per_sec(),
            "speedup_vs_emulation": s_emu,
            "speedup_vs_virtio": s_virtio,
        }));
    }
    print_table(
        "Application throughput and NeSC speedups",
        &[
            "app",
            "NeSC tx/s",
            "virtio tx/s",
            "emul tx/s",
            "12a: vs emul",
            "12b: vs virtio",
        ],
        &rows,
    );
    println!("\nheadline: NeSC > virtio > emulation for every application;");
    println!("          speedups over emulation exceed speedups over virtio (paper Fig. 12a/b)");

    emit_json("fig12_apps", &serde_json::json!({ "apps": json }));
}
