//! Scale-out study — datacenter tenancy on one self-virtualizing
//! controller.
//!
//! The paper's prototype runs a handful of VFs; this harness asks what
//! the architecture does at datacenter tenant counts: 1000 VFs (850
//! steady + 100 bursty + 50 noisy neighbors) declared as a
//! [`ScenarioSpec`] and replayed as one deterministic open-loop tape.
//! Emits per-tenant p99 latency plus the fleet fairness curves
//! (Jain index, Lorenz latency share) into `results/scale_mixed.json`.
//!
//! `NESC_SCALE_VFS=<n>` shrinks the fleet proportionally for smoke runs;
//! the JSON golden is only written at full scale so reduced runs can
//! never corrupt the byte-gated result.

use nesc_bench::{emit_json, print_table};
use nesc_workloads::scenario::Scenario;
use nesc_workloads::{ScenarioSpec, TenantClass, TenantSpec};

/// A proportionally shrunk copy of the datacenter mix (~85/10/5).
fn scaled_mix(vfs: u32) -> Scenario {
    let steady = (vfs * 85 / 100).max(1);
    let bursty = (vfs / 10).max(1);
    let noisy = (vfs / 20).max(1);
    Scenario::new(
        ScenarioSpec::new("scale_mixed_reduced")
            .seed(0xD47A_CE17)
            .tenants(TenantSpec::steady(steady).requests(56))
            .tenants(TenantSpec::bursty(bursty).requests(48))
            .tenants(TenantSpec::noisy(noisy).requests(96)),
    )
}

fn main() {
    let override_vfs = std::env::var("NESC_SCALE_VFS")
        .ok()
        .and_then(|s| s.parse::<u32>().ok());
    let scenario = match override_vfs {
        None => Scenario::datacenter_mix(),
        Some(n) => scaled_mix(n),
    };
    let vfs = scenario.spec().total_tenants();
    println!("Scale-out: {vfs} tenant VFs on one NeSC controller");

    // nesc-lint::allow(D1): the scale gate reports host wall-clock (how
    // long the 1000-VF replay takes to *simulate*), never simulated time.
    let host_start = std::time::Instant::now();
    let rep = match scenario.run() {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("scale_out: invalid scenario: {e}");
            std::process::exit(2);
        }
    };
    let host_secs = host_start.elapsed().as_secs_f64();

    let mut rows = Vec::new();
    for class in [
        TenantClass::Steady,
        TenantClass::Bursty,
        TenantClass::NoisyNeighbor,
    ] {
        let outcomes: Vec<_> = rep.tenants.iter().filter(|t| t.class == class).collect();
        if outcomes.is_empty() {
            continue;
        }
        let reqs: u64 = outcomes.iter().map(|t| t.requests).sum();
        let mean_p99 = outcomes.iter().map(|t| t.p99_ns).sum::<u64>() / outcomes.len() as u64;
        rows.push(vec![
            class.label().to_string(),
            outcomes.len().to_string(),
            reqs.to_string(),
            format!("{:.1}", mean_p99 as f64 / 1e3),
            format!("{:.1}", rep.class_worst_p99_ns(class) as f64 / 1e3),
        ]);
    }
    print_table(
        "Per-class latency",
        &[
            "class",
            "tenants",
            "requests",
            "mean p99 (us)",
            "worst p99 (us)",
        ],
        &rows,
    );
    println!(
        "fleet: {} requests, makespan {:.2} ms sim / {:.2} s host, Jain {} permille, {} SLO violations",
        rep.total_requests,
        rep.makespan.as_nanos() as f64 / 1e6,
        host_secs,
        rep.jain_permille,
        rep.slo_violations,
    );
    println!(
        "lorenz latency-share curve (permille): {:?}",
        rep.lorenz_permille
    );

    // The byte-gated golden captures the full-scale run only.
    if override_vfs.is_some() {
        println!("(reduced fleet: skipping results/scale_mixed.json)");
        return;
    }
    let classes: Vec<_> = rep
        .tenants
        .iter()
        .map(|t| t.class.label().to_string())
        .collect();
    let p99s: Vec<u64> = rep.tenants.iter().map(|t| t.p99_ns).collect();
    let means: Vec<u64> = rep.tenants.iter().map(|t| t.mean_ns).collect();
    let errors: u64 = rep.tenants.iter().map(|t| t.errors).sum();
    emit_json(
        "scale_mixed",
        &serde_json::json!({
            "name": rep.name,
            "seed": rep.seed,
            "vfs": vfs,
            "total_requests": rep.total_requests,
            "total_bytes": rep.total_bytes,
            "makespan_ns": rep.makespan.as_nanos(),
            "jain_permille": rep.jain_permille,
            "lorenz_permille": rep.lorenz_permille,
            "slo_violations": rep.slo_violations,
            "errors": errors,
            "digest": format!("{:016x}", rep.digest),
            "tenant_class": classes,
            "tenant_p99_ns": p99s,
            "tenant_mean_ns": means,
        }),
    );
}
