//! Hot-path wall-clock tracking harness.
//!
//! Measures host nanoseconds per simulated block for the device data path
//! across the extent-run batching matrix — sequential vs random streams,
//! 4 KiB vs 64 KiB requests, BTLB sizes {0, 8, 32} — each both per-block
//! (`max_run_blocks = 1`, the historical loop) and batched (unbounded
//! runs). Every pair is also cross-checked for identical simulated
//! results (`nesc_bench::hotpath::measure_pair` panics on divergence), so
//! this binary doubles as the timing-neutrality gate.
//!
//! Writes `results/BENCH_hotpath.json` for cross-PR tracking.

use nesc_bench::hotpath::{measure_pair, HotpathConfig};
use nesc_bench::{emit_json, fmt, print_table};
use serde_json::json;

fn main() {
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut seq64_speedup_at_8 = 0.0;
    for &btlb in &[0usize, 8, 32] {
        for &(stream, sequential) in &[("seq", true), ("rand", false)] {
            for &(label, blocks, requests) in &[("4k", 4u64, 4000u64), ("64k", 64, 1500)] {
                let cfg = HotpathConfig {
                    btlb_entries: btlb,
                    max_run_blocks: 1,
                    req_blocks: blocks,
                    sequential,
                    requests,
                };
                let (per_block, batched) = measure_pair(cfg);
                let speedup = per_block.wall_ns_per_block / batched.wall_ns_per_block;
                if btlb == 8 && sequential && blocks == 64 {
                    seq64_speedup_at_8 = speedup;
                }
                rows.push(vec![
                    btlb.to_string(),
                    stream.to_string(),
                    label.to_string(),
                    fmt(per_block.wall_ns_per_block),
                    fmt(batched.wall_ns_per_block),
                    format!("{}x", fmt(speedup)),
                ]);
                series.push(json!({
                    "btlb_entries": btlb,
                    "stream": stream,
                    "request": label,
                    "blocks_moved": batched.blocks,
                    "per_block_ns_per_block": per_block.wall_ns_per_block,
                    "batched_ns_per_block": batched.wall_ns_per_block,
                    "speedup": speedup,
                    "simulated_last_ns": batched.simulated_last_ns,
                    "btlb_hits": batched.btlb_hits,
                    "walks": batched.walks,
                }));
            }
        }
    }
    print_table(
        "Hot-path wall clock: ns per simulated block (per-block vs run-batched)",
        &[
            "btlb",
            "stream",
            "req",
            "ns/blk (run=1)",
            "ns/blk (batched)",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nsequential 64K @ 8-entry BTLB speedup: {}x (target >= 3x)",
        fmt(seq64_speedup_at_8)
    );
    println!(
        "note: btlb=0 series run the identical per-block instruction stream in both\n\
         modes (the device clamps runs to one block when the BTLB holds nothing), so\n\
         their speedup is parity within wall-clock noise (~1%)."
    );
    emit_json(
        "BENCH_hotpath",
        &json!({
            "benchmark": "hot-path wall clock, run batching on vs off",
            "unit": "host ns per simulated block",
            "invariant": "simulated completion times, BTLB hit counts, and walk counts are asserted identical between modes",
            "measurement": "interleaved A/B, min of 5 repeats per mode",
            "btlb0_note": "btlb_entries=0 series execute the identical per-block code in both modes (run cap clamps to 1 when the BTLB holds nothing); speedup there is parity within ~1% wall-clock noise",
            "seq_64k_btlb8_speedup": seq64_speedup_at_8,
            "series": series,
        }),
    );
}
