//! `nesc-inspect` — query a forensic flight-recorder dump.
//!
//! ```text
//! nesc-inspect [--dump PATH] <command> [options]
//!
//! commands:
//!   summary                  dump overview: anomaly, ring, exemplars
//!   timeline [--vf N] [--limit N]
//!                            event timeline, optionally one VF's slice
//!   why                      worst request: phase breakdown derived from
//!                            flight events, cross-checked against the
//!                            exemplar's span tree (exit 1 on mismatch)
//!   contention [--top K]     per-function media/link busy-time attribution
//!   perfetto [--out PATH]    re-export the dump as a merged Perfetto trace
//! ```
//!
//! The dump defaults to `results/forensic_dump.json` (written by the
//! `forensics` harness).

use std::process::ExitCode;

use nesc_bench::forensic::ForensicDump;
use nesc_bench::{fmt, print_table};
use nesc_sim::FlightEventKind;

struct Args {
    dump: String,
    command: String,
    vf: Option<u32>,
    limit: usize,
    top: usize,
    out: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: nesc-inspect [--dump PATH] <summary|timeline|why|contention|perfetto> \
         [--vf N] [--limit N] [--top K] [--out PATH]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        dump: "results/forensic_dump.json".to_string(),
        command: String::new(),
        vf: None,
        limit: 40,
        top: 8,
        out: "results/forensic_window_trace.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, ExitCode> {
            it.next().ok_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--dump" => args.dump = flag_value("--dump")?,
            "--vf" => {
                let v = flag_value("--vf")?;
                args.vf = Some(v.parse().map_err(|_| {
                    eprintln!("--vf wants an integer, got {v}");
                    usage()
                })?);
            }
            "--limit" => {
                let v = flag_value("--limit")?;
                args.limit = v.parse().map_err(|_| {
                    eprintln!("--limit wants an integer, got {v}");
                    usage()
                })?;
            }
            "--top" => {
                let v = flag_value("--top")?;
                args.top = v.parse().map_err(|_| {
                    eprintln!("--top wants an integer, got {v}");
                    usage()
                })?;
            }
            "--out" => args.out = flag_value("--out")?,
            "--help" | "-h" => return Err(usage()),
            cmd if args.command.is_empty() && !cmd.starts_with('-') => {
                args.command = cmd.to_string();
            }
            other => {
                eprintln!("unknown argument: {other}");
                return Err(usage());
            }
        }
    }
    if args.command.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn load(path: &str) -> Result<ForensicDump, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e} (run the `forensics` harness first)");
        ExitCode::FAILURE
    })?;
    ForensicDump::parse(&text).map_err(|e| {
        eprintln!("{path} is not a forensic dump: {e}");
        ExitCode::FAILURE
    })
}

fn summary(d: &ForensicDump) {
    println!("anomaly : {}", d.anomaly_text);
    println!("series  : {}", d.anomaly_series);
    println!("window  : {}", d.anomaly_window);
    println!(
        "ring    : {} retained / {} appended / {} dropped (capacity {})",
        d.events.len(),
        d.total,
        d.dropped,
        d.capacity
    );
    println!("exemplars: {}", d.exemplars.len());
    if let Some(w) = d.worst_exemplar() {
        println!(
            "worst   : seq {} on disk {} — {} us",
            w.seq,
            w.disk,
            fmt(w.latency_ns as f64 / 1000.0)
        );
    }
}

fn timeline(d: &ForensicDump, vf: Option<u32>, limit: usize) {
    let events: Vec<_> = match vf {
        Some(v) => d.vf_events(v),
        None => d.events.iter().collect(),
    };
    let shown = events.len().min(limit);
    let rows: Vec<Vec<String>> = events[events.len() - shown..]
        .iter()
        .map(|e| {
            vec![
                fmt(e.t_ns as f64 / 1000.0),
                e.kind.as_str().to_string(),
                e.func.to_string(),
                e.a.to_string(),
                e.b.to_string(),
            ]
        })
        .collect();
    let title = match vf {
        Some(v) => format!("Timeline — VF {v} ({} of {} events)", shown, events.len()),
        None => format!("Timeline ({} of {} events)", shown, events.len()),
    };
    print_table(&title, &["t us", "event", "func", "a", "b"], &rows);
}

/// The "why was this request slow" view. Returns false when the two
/// independently derived breakdowns disagree — a determinism or
/// instrumentation bug worth a non-zero exit.
fn why(d: &ForensicDump) -> bool {
    let Some(worst) = d.worst_exemplar() else {
        eprintln!("dump has no exemplars");
        return false;
    };
    let Some(from_events) = d.breakdown_from_events(worst.seq) else {
        eprintln!(
            "request {}'s anchor events fell out of the ring (capacity {})",
            worst.seq, d.capacity
        );
        return false;
    };
    let from_spans = ForensicDump::breakdown_from_spans(worst);
    let mut ok = true;
    let mut rows = Vec::new();
    for (name, ev_ns) in &from_events {
        let sp = from_spans.iter().find(|(n, _)| n == name).map(|(_, d)| *d);
        let agree = sp == Some(*ev_ns);
        ok &= agree;
        rows.push(vec![
            name.to_string(),
            fmt(*ev_ns as f64 / 1000.0),
            sp.map(|ns| fmt(ns as f64 / 1000.0)).unwrap_or("-".into()),
            format!(
                "{:.1}",
                100.0 * *ev_ns as f64 / worst.latency_ns.max(1) as f64
            ),
            if agree { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Why was request {} slow? ({} us on disk {}, window {})",
            worst.seq,
            fmt(worst.latency_ns as f64 / 1000.0),
            worst.disk,
            worst.window
        ),
        &["phase", "events us", "spans us", "% of total", "agree"],
        &rows,
    );
    let total: u64 = from_events.iter().map(|(_, ns)| ns).sum();
    if total != worst.latency_ns {
        eprintln!(
            "phases sum to {} ns but the request took {} ns",
            total, worst.latency_ns
        );
        ok = false;
    }
    // Contextual evidence: translation activity around the slow request.
    let walks = d
        .events
        .iter()
        .filter(|e| {
            matches!(e.kind, FlightEventKind::BtlbMiss | FlightEventKind::Rewalk)
                && e.t_ns <= worst.t_ns
                && e.t_ns + 1_000_000 > worst.t_ns
        })
        .count();
    println!("\n  context: {walks} BTLB walk/rewalk events in the preceding 1 ms");
    if ok {
        println!("  event-derived and span-derived breakdowns agree exactly.");
    } else {
        eprintln!("  BREAKDOWN MISMATCH — the two derivations disagree.");
    }
    ok
}

fn contention(d: &ForensicDump, top: usize) {
    let rows: Vec<Vec<String>> = d
        .contention_top_k(top)
        .into_iter()
        .map(|(func, media, link)| {
            vec![
                func.to_string(),
                fmt(media as f64 / 1000.0),
                fmt(link as f64 / 1000.0),
                fmt((media + link) as f64 / 1000.0),
            ]
        })
        .collect();
    print_table(
        &format!("Top-{top} contention (service busy time per function)"),
        &["func", "media us", "link us", "total us"],
        &rows,
    );
}

fn perfetto(d: &ForensicDump, out: &str) -> bool {
    let trace = d.perfetto_json();
    match serde_json::to_string_pretty(&trace) {
        Ok(s) => match std::fs::write(out, s) {
            Ok(()) => {
                println!("[merged Perfetto trace written to {out}]");
                true
            }
            Err(e) => {
                eprintln!("cannot write {out}: {e}");
                false
            }
        },
        Err(_) => {
            eprintln!("trace serialization failed");
            false
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let dump = match load(&args.dump) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let ok = match args.command.as_str() {
        "summary" => {
            summary(&dump);
            true
        }
        "timeline" => {
            timeline(&dump, args.vf, args.limit);
            true
        }
        "why" => why(&dump),
        "contention" => {
            contention(&dump, args.top);
            true
        }
        "perfetto" => perfetto(&dump, &args.out),
        other => {
            eprintln!("unknown command: {other}");
            return usage();
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
