//! Table II — the benchmark list, executed.
//!
//! Rather than just printing the paper's table, this harness *runs* a
//! short configuration of every benchmark on the NeSC path and reports
//! its profile, proving each generator is wired and live.

use nesc_bench::{emit_json, print_table, standard_system};
use nesc_hypervisor::DiskKind;
use nesc_storage::BlockOp;
use nesc_workloads::{Dd, DdMode, FileIo, Oltp, Postmark, TenantIo, Workload};

fn main() {
    println!("Table II reproduction: benchmarks (each run briefly on the NeSC path)");
    let mut rows = Vec::new();

    // dd — microbenchmark.
    {
        let (mut sys, _vm, disk) = standard_system(DiskKind::NescDirect, 64 << 20);
        let rep = Dd::new(BlockOp::Read, 4096, 64, DdMode::Sync)
            .run(&mut TenantIo::attached(&mut sys, disk));
        rows.push(vec![
            "GNU dd".into(),
            "microbenchmark: read/write files with different parameters".into(),
            rep.summary(),
        ]);
    }
    // SysBench File I/O.
    {
        let (mut sys, _vm, disk) = standard_system(DiskKind::NescDirect, 64 << 20);
        let rep = FileIo {
            files: 4,
            file_bytes: 512 * 1024,
            ops: 80,
            ..Default::default()
        }
        .run(&mut TenantIo::attached(&mut sys, disk));
        rows.push(vec![
            "Sysbench I/O".into(),
            "a sequence of random file operations".into(),
            rep.summary(),
        ]);
    }
    // Postmark.
    {
        let (mut sys, _vm, disk) = standard_system(DiskKind::NescDirect, 64 << 20);
        let rep = Postmark {
            initial_files: 16,
            transactions: 60,
            ..Default::default()
        }
        .run(&mut TenantIo::attached(&mut sys, disk));
        rows.push(vec![
            "Postmark".into(),
            "mail server simulation".into(),
            rep.summary(),
        ]);
    }
    // MySQL / SysBench OLTP.
    {
        let (mut sys, _vm, disk) = standard_system(DiskKind::NescDirect, 64 << 20);
        let rep = Oltp {
            rows: 8_000,
            transactions: 60,
            ..Default::default()
        }
        .run(&mut TenantIo::attached(&mut sys, disk));
        rows.push(vec![
            "MySQL".into(),
            "relational database serving the SysBench OLTP workload".into(),
            rep.summary(),
        ]);
    }

    print_table(
        "Benchmarks",
        &["benchmark", "description (paper Table II)", "smoke run"],
        &rows,
    );
    emit_json("table2_benchmarks", &serde_json::json!({ "rows": rows }));
}
