//! Ablation — extent-tree pruning under host memory pressure (§IV-B).
//!
//! "If memory becomes tight, the hypervisor can prune parts of the extent
//! tree and mark the pruned sections by storing NULL in their respective
//! Next Node Pointer. When NeSC needs to access a pruned subtree, it
//! interrupts the host to regenerate the mappings." This harness
//! quantifies the trade: the more aggressively the hypervisor prunes,
//! the more device accesses stall on regeneration interrupts.

use nesc_bench::{emit_json, fmt, print_table};
use nesc_core::NescConfig;
use nesc_extent::Vlba;
use nesc_hypervisor::{DiskKind, SoftwareCosts, System};
use nesc_sim::SimRng;

const OPS: u64 = 256;

/// Mean read latency (µs) and miss interrupts when the hypervisor prunes
/// the hot mapping every `prune_every` reads (0 = never).
fn run(prune_every: u64) -> (f64, u64) {
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 256 * 1024;
    let mut sys = System::new(cfg, SoftwareCosts::calibrated());
    // A fragmented image (interleaved allocation) so its tree has
    // prunable internal levels.
    let vm = sys.create_vm();
    let img = sys.create_image("hot.img", 8 << 20, false).unwrap();
    let other = sys.create_image("interleave.img", 8 << 20, false).unwrap();
    for b in 0..4096u64 {
        sys.host_fs_mut().allocate_range(img, Vlba(b), 1).unwrap();
        sys.host_fs_mut().allocate_range(other, Vlba(b), 1).unwrap();
    }
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    let mut rng = SimRng::seed(99);
    let mut buf = vec![0u8; 4096];
    let mut total_us = 0.0;
    for i in 0..OPS {
        if prune_every > 0 && i % prune_every == 0 {
            // Host memory pressure: evict a subtree inside the workload's
            // hot set, so the eviction actually matters (evicting cold
            // mappings is free — that is the point of pruning).
            let victim = Vlba(rng.range(0, 252));
            sys.prune_image_mapping(disk, victim);
        }
        // A hot working set of 256 blocks (the interesting case: pruning
        // what is actually being used).
        let offset = (rng.range(0, 252) / 4) * 4 * 1024;
        let lat = sys.read(disk, offset, &mut buf);
        total_us += lat.as_micros_f64();
    }
    (total_us / OPS as f64, sys.device().stats().miss_interrupts)
}

fn main() {
    println!("Ablation: hypervisor tree pruning rate vs device-visible cost");
    println!("(fragmented 4K-extent image, random 4KB reads, prune = evict one subtree)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, every) in [
        ("never", 0u64),
        ("every 64 ops", 64),
        ("every 16 ops", 16),
        ("every 4 ops", 4),
    ] {
        let (lat, misses) = run(every);
        rows.push(vec![label.into(), fmt(lat), misses.to_string()]);
        json.push(serde_json::json!({
            "prune_every": every,
            "mean_read_latency_us": lat,
            "miss_interrupts": misses,
        }));
    }
    print_table(
        "Pruning pressure",
        &["prune rate", "mean read latency us", "regen interrupts"],
        &rows,
    );
    println!("\nexpected: each pruned-subtree access costs a host interrupt plus a");
    println!("tree rebuild, so aggressive pruning trades host memory for latency —");
    println!("the reason the paper prunes only under real memory pressure.");
    emit_json(
        "ablation_prune_pressure",
        &serde_json::json!({ "points": json }),
    );
}
