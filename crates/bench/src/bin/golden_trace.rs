//! Golden trace: the full span tree of one small, fixed workload.
//!
//! The simulator is a deterministic discrete-event model, so the same
//! workload must always produce the *identical* span forest — same ids,
//! same parents, same timestamps, same attributes. This binary runs a
//! fixed three-request workload (a NeSC-direct write + read and a virtio
//! write) with tracing on and serializes every span to
//! `results/golden_trace.json`; `scripts/check.sh` regenerates it and
//! fails if a single byte moved. Any timing or instrumentation change
//! that alters the trace must update the golden deliberately.
//!
//! ```text
//! cargo run -p nesc-bench --bin golden_trace
//! ```

use nesc_bench::emit_json;
use nesc_hypervisor::prelude::*;

fn span_json(s: &Span) -> serde_json::Value {
    let attrs: Vec<(String, serde_json::Value)> = s
        .attrs
        .iter()
        .map(|&(k, v)| (k.to_string(), serde_json::Value::from(v)))
        .collect();
    serde_json::json!({
        "id": s.id.0,
        "parent": s.parent.0,
        "layer": s.layer,
        "name": s.name,
        "start_ns": s.start.as_nanos(),
        "end_ns": s.end.as_nanos(),
        "attrs": serde_json::Value::Object(attrs),
    })
}

fn main() {
    let mut sys = SystemBuilder::new()
        .capacity_blocks(64 * 1024)
        .tracing(true)
        .build();
    let direct = sys
        .quick_disk(DiskKind::NescDirect, "golden_d.img", 4 << 20)
        .disk;
    let virtio = sys
        .quick_disk(DiskKind::Virtio, "golden_v.img", 4 << 20)
        .disk;

    sys.write(direct, 0, &[0xAAu8; 8192]);
    let mut buf = [0u8; 4096];
    sys.read(direct, 4096, &mut buf);
    sys.write(virtio, 0, &[0xBBu8; 4096]);

    let spans = sys.take_spans();
    let tree = SpanTree::new(spans);
    tree.check_nesting().expect("golden trace is well-nested");
    let mut requests = 0;
    for root in tree.roots().filter(|s| s.name == "request") {
        tree.check_partition(root.id)
            .expect("request children partition end-to-end");
        requests += 1;
    }
    println!(
        "golden trace: {} spans, {} request roots",
        tree.spans().len(),
        requests
    );

    let spans_json: Vec<serde_json::Value> = tree.spans().iter().map(span_json).collect();
    emit_json(
        "golden_trace",
        &serde_json::json!({
            "workload": "direct write 8KiB + direct read 4KiB + virtio write 4KiB",
            "requests": requests,
            "spans": spans_json,
        }),
    );
}
