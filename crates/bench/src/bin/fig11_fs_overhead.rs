//! Fig. 11 — filesystem overheads: guest write latency with and without a
//! guest (ext4-style) filesystem, on NeSC and virtio.
//!
//! Paper results being reproduced: "the filesystem overhead consistently
//! increases NeSC's write latency by 40µs"; "Using virtio with a
//! filesystem incurs an extra 170µs, which is over 4× slower than NeSC
//! with a filesystem for writes smaller than 8KB"; "the latency obtained
//! using NeSC [with a filesystem] is similar to that of a raw virtio
//! device" — i.e. NeSC eliminates the hypervisor's filesystem overheads.

use nesc_bench::{emit_json, fmt, paper_block_sizes, print_table, standard_system};
use nesc_hypervisor::{DiskKind, GuestFilesystem};
use nesc_storage::BlockOp;
use nesc_workloads::{Dd, DdMode, TenantIo, Workload};

const IMAGE_BYTES: u64 = 64 << 20;
const SAMPLES: u64 = 16;

/// Mean raw (no guest FS) write latency at `bs`, µs.
fn raw_write_us(kind: DiskKind, bs: u64) -> f64 {
    let (mut sys, _vm, disk) = standard_system(kind, IMAGE_BYTES);
    // Steady state: pre-touch.
    Dd::new(BlockOp::Write, bs.max(1024), 4, DdMode::Sync)
        .run(&mut TenantIo::attached(&mut sys, disk));
    Dd::new(BlockOp::Write, bs, SAMPLES, DdMode::Sync)
        .run(&mut TenantIo::attached(&mut sys, disk))
        .mean_latency_us()
}

/// Mean write latency through a guest filesystem at `bs`, µs. Writes
/// append to a fresh file so allocation + journaling are on the path, as
/// in the paper's measurement.
fn fs_write_us(kind: DiskKind, bs: u64) -> f64 {
    let (mut sys, vm, disk) = standard_system(kind, IMAGE_BYTES);
    let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
    let ino = gfs.create(&mut sys, "bench.dat").expect("fresh fs");
    let payload = vec![0xF5u8; bs as usize];
    let mut total_us = 0.0;
    for i in 0..SAMPLES {
        let lat = gfs
            .write(&mut sys, ino, i * bs, &payload)
            .expect("space available");
        total_us += lat.as_micros_f64();
    }
    total_us / SAMPLES as f64
}

fn main() {
    println!("Fig. 11 reproduction: write latency (us) with and without a guest filesystem");
    let sizes = paper_block_sizes();
    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for &bs in &sizes {
        let virtio_fs = fs_write_us(DiskKind::Virtio, bs);
        let virtio_raw = raw_write_us(DiskKind::Virtio, bs);
        let nesc_fs = fs_write_us(DiskKind::NescDirect, bs);
        let nesc_raw = raw_write_us(DiskKind::NescDirect, bs);
        series[0].push(virtio_fs);
        series[1].push(virtio_raw);
        series[2].push(nesc_fs);
        series[3].push(nesc_raw);
        let label = if bs < 1024 {
            format!("{:.1}", bs as f64 / 1024.0)
        } else {
            format!("{}", bs / 1024)
        };
        rows.push(vec![
            label,
            fmt(virtio_fs),
            fmt(virtio_raw),
            fmt(nesc_fs),
            fmt(nesc_raw),
        ]);
    }
    print_table(
        "Write latency [us]",
        &["KB", "Virtio-FS", "Virtio-raw", "NeSC-FS", "NeSC-raw"],
        &rows,
    );

    let idx4k = sizes.iter().position(|&s| s == 4096).unwrap();
    let nesc_overhead = series[2][idx4k] - series[3][idx4k];
    let virtio_overhead = series[0][idx4k] - series[1][idx4k];
    println!("\nheadline (4KB writes):");
    println!("  NeSC   FS overhead: +{nesc_overhead:.0} us (paper: ~+40 us)");
    println!("  virtio FS overhead: +{virtio_overhead:.0} us (paper: ~+170 us)");
    println!(
        "  NeSC-FS vs virtio-raw: {:.2}x (paper: ~1x — NeSC eliminates the hypervisor FS overhead)",
        series[2][idx4k] / series[1][idx4k]
    );
    println!(
        "  virtio-FS vs NeSC-FS: {:.1}x (paper: >4x for writes <8KB)",
        series[0][idx4k] / series[2][idx4k]
    );

    emit_json(
        "fig11_fs_overhead",
        &serde_json::json!({
            "block_sizes": sizes,
            "virtio_fs_us": series[0],
            "virtio_raw_us": series[1],
            "nesc_fs_us": series[2],
            "nesc_raw_us": series[3],
        }),
    );
}
