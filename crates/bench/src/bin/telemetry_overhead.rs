//! telemetry_overhead — host-side wall-clock cost of the perfmon sampler.
//!
//! Runs one seeded mixed multi-VF workload three ways — telemetry off,
//! sampling at 50 µs, sampling at 10 µs of simulated time — and reports
//! host nanoseconds per simulated request for each. The simulated
//! per-request latencies are asserted bit-identical across all modes:
//! the sampler observes the run, it must never perturb it.
//!
//! Wall-clock numbers vary run to run; `results/BENCH_telemetry.json` is
//! a record, not a byte-gated golden.

use std::time::Instant;

use nesc_bench::{emit_json, fmt, print_table};
use nesc_hypervisor::prelude::*;
use nesc_sim::SimRng;

const REQUESTS: u64 = 1500;
const VFS: usize = 3;
const REPEATS: usize = 200;

fn build(tel: Option<TelemetryConfig>) -> (System, Vec<DiskId>) {
    let mut b = SystemBuilder::new().capacity_blocks(256 * 1024).max_vfs(8);
    if let Some(cfg) = tel {
        b = b.telemetry(cfg);
    }
    let mut sys = b.build();
    let disks = (0..VFS)
        .map(|i| {
            sys.quick_disk(DiskKind::NescDirect, &format!("vf{i}.img"), 8 << 20)
                .disk
        })
        .collect();
    (sys, disks)
}

fn drive(sys: &mut System, disks: &[DiskId]) -> Vec<u64> {
    let mut rng = SimRng::seed(77);
    let sizes = [2048u64, 4096, 8192, 16384];
    let mut buf = vec![0u8; 16384];
    let mut latencies = Vec::with_capacity(REQUESTS as usize);
    for _ in 0..REQUESTS {
        let d = disks[rng.range(0, VFS as u64) as usize];
        let bytes = sizes[rng.range(0, sizes.len() as u64) as usize] as usize;
        let offset = rng.range(0, (8 << 20) / 16384) * 16384;
        let l = if rng.range(0, 100) < 60 {
            sys.read(d, offset, &mut buf[..bytes])
        } else {
            sys.write(d, offset, &buf[..bytes])
        };
        latencies.push(l.as_nanos());
        sys.think(SimDuration::from_micros(rng.range(1, 10)));
    }
    latencies
}

type TelemetryMode = Box<dyn Fn() -> Option<TelemetryConfig>>;

/// Per-round host ns per request for every mode, plus each mode's
/// simulated latencies for the cross-mode invariant check. The repeat
/// rounds are interleaved across modes so slow machine-load drift hits
/// every mode equally instead of biasing whichever ran last.
fn measure_all(modes: &[TelemetryMode]) -> Vec<(Vec<f64>, Vec<u64>)> {
    let mut rounds = vec![Vec::with_capacity(REPEATS); modes.len()];
    let mut latencies = vec![Vec::new(); modes.len()];
    for _ in 0..REPEATS {
        for (i, tel) in modes.iter().enumerate() {
            let (mut sys, disks) = build(tel());
            // nesc-lint::allow(D1): this harness measures host wall-clock —
            // wall time is the subject, never an input to simulated state.
            let started = Instant::now();
            latencies[i] = drive(&mut sys, &disks);
            let ns = started.elapsed().as_nanos() as f64 / REQUESTS as f64;
            rounds[i].push(ns);
        }
    }
    rounds.into_iter().zip(latencies).collect()
}

/// Best of a mode's rounds: the mean of the lowest tenth. The raw
/// minimum dodges noise but is itself an order statistic with real
/// jitter; averaging the quietest decile of many short rounds keeps the
/// noise-dodging while shrinking that jitter several-fold.
fn best(rounds: &[f64]) -> f64 {
    let mut sorted = rounds.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = (sorted.len() / 10).max(1);
    sorted[..n].iter().sum::<f64>() / n as f64
}

/// Relative overhead of `over` vs `base` from each mode's quiet-decile
/// cost. Per-round pairing is *not* robust here: one descheduled round
/// swings a paired delta by tens of percent either way, while the quiet
/// deciles of two interleaved modes both converge on an unloaded
/// machine.
fn min_overhead_pct(over: &[f64], base: &[f64]) -> f64 {
    100.0 * (best(over) - best(base)) / best(base)
}

fn main() {
    println!("telemetry_overhead: perfmon sampler cost on the request path");

    let modes: Vec<TelemetryMode> = vec![
        Box::new(|| None),
        Box::new(|| Some(TelemetryConfig::windowed(SimDuration::from_micros(50)).capacity(4096))),
        Box::new(|| Some(TelemetryConfig::windowed(SimDuration::from_micros(10)).capacity(4096))),
        Box::new(|| {
            Some(
                TelemetryConfig::windowed(SimDuration::from_micros(50))
                    .capacity(4096)
                    .flight(FlightConfig::default()),
            )
        }),
    ];
    let mut results = measure_all(&modes).into_iter();
    let (off_rounds, lat_off) = results.next().expect("off mode");
    let (on50_rounds, lat_50) = results.next().expect("50us mode");
    let (on10_rounds, lat_10) = results.next().expect("10us mode");
    let (fl50_rounds, lat_fl) = results.next().expect("flight mode");
    assert_eq!(lat_off, lat_50, "telemetry must not perturb simulated time");
    assert_eq!(lat_off, lat_10, "telemetry must not perturb simulated time");
    assert_eq!(
        lat_off, lat_fl,
        "the flight recorder must not perturb simulated time"
    );
    let (off, on50, on10, fl50) = (
        best(&off_rounds),
        best(&on50_rounds),
        best(&on10_rounds),
        best(&fl50_rounds),
    );

    let pct = |on: f64| 100.0 * (on - off) / off;
    // The recorder's marginal cost over telemetry alone at the same
    // window — the gated number (NESC_GATE_FLIGHT_PCT in check.sh).
    let flight_pct = min_overhead_pct(&fl50_rounds, &on50_rounds);
    print_table(
        &format!("host ns per request, {REQUESTS} mixed requests x {VFS} VFs (best of {REPEATS})"),
        &["mode", "ns/request", "overhead %"],
        &[
            vec!["telemetry off".into(), fmt(off), "-".into()],
            vec!["50 us interval".into(), fmt(on50), fmt(pct(on50))],
            vec!["10 us interval".into(), fmt(on10), fmt(pct(on10))],
            vec!["50 us + flight recorder".into(), fmt(fl50), fmt(pct(fl50))],
        ],
    );
    println!("\nsimulated per-request latencies identical across all modes");
    println!(
        "flight recorder marginal cost over 50 us telemetry: {}%",
        fmt(flight_pct)
    );

    emit_json(
        "BENCH_telemetry",
        &serde_json::json!({
            "benchmark": "telemetry overhead, host wall clock",
            "unit": "host ns per simulated request",
            "invariant": "simulated per-request latencies are asserted identical across modes",
            "requests": REQUESTS,
            "off_ns_per_request": off,
            "on_50us_ns_per_request": on50,
            "on_10us_ns_per_request": on10,
            "flight_50us_ns_per_request": fl50,
            "overhead_50us_percent": pct(on50),
            "overhead_10us_percent": pct(on10),
            "overhead_flight_percent": flight_pct,
            "rounds_off": off_rounds.clone(),
            "rounds_50us": on50_rounds.clone(),
            "rounds_10us": on10_rounds.clone(),
            "rounds_flight": fl50_rounds.clone(),
        }),
    );
}
