//! telemetry_overhead — host-side wall-clock cost of the perfmon sampler.
//!
//! Runs one seeded mixed multi-VF workload three ways — telemetry off,
//! sampling at 50 µs, sampling at 10 µs of simulated time — and reports
//! host nanoseconds per simulated request for each. The simulated
//! per-request latencies are asserted bit-identical across all modes:
//! the sampler observes the run, it must never perturb it.
//!
//! Wall-clock numbers vary run to run; `results/BENCH_telemetry.json` is
//! a record, not a byte-gated golden.

use std::time::Instant;

use nesc_bench::{emit_json, fmt, print_table};
use nesc_hypervisor::prelude::*;
use nesc_sim::SimRng;

const REQUESTS: u64 = 4000;
const VFS: usize = 3;
const REPEATS: usize = 5;

fn build(tel: Option<TelemetryConfig>) -> (System, Vec<DiskId>) {
    let mut b = SystemBuilder::new().capacity_blocks(256 * 1024).max_vfs(8);
    if let Some(cfg) = tel {
        b = b.telemetry(cfg);
    }
    let mut sys = b.build();
    let disks = (0..VFS)
        .map(|i| {
            sys.quick_disk(DiskKind::NescDirect, &format!("vf{i}.img"), 8 << 20)
                .disk
        })
        .collect();
    (sys, disks)
}

fn drive(sys: &mut System, disks: &[DiskId]) -> Vec<u64> {
    let mut rng = SimRng::seed(77);
    let sizes = [2048u64, 4096, 8192, 16384];
    let mut buf = vec![0u8; 16384];
    let mut latencies = Vec::with_capacity(REQUESTS as usize);
    for _ in 0..REQUESTS {
        let d = disks[rng.range(0, VFS as u64) as usize];
        let bytes = sizes[rng.range(0, sizes.len() as u64) as usize] as usize;
        let offset = rng.range(0, (8 << 20) / 16384) * 16384;
        let l = if rng.range(0, 100) < 60 {
            sys.read(d, offset, &mut buf[..bytes])
        } else {
            sys.write(d, offset, &buf[..bytes])
        };
        latencies.push(l.as_nanos());
        sys.think(SimDuration::from_micros(rng.range(1, 10)));
    }
    latencies
}

/// Best-of-N host ns per request, plus the simulated latencies for the
/// cross-mode invariant check.
fn measure(tel: impl Fn() -> Option<TelemetryConfig>) -> (f64, Vec<u64>) {
    let mut best = f64::INFINITY;
    let mut latencies = Vec::new();
    for _ in 0..REPEATS {
        let (mut sys, disks) = build(tel());
        // nesc-lint::allow(D1): this harness measures host wall-clock —
        // wall time is the subject, never an input to simulated state.
        let started = Instant::now();
        latencies = drive(&mut sys, &disks);
        let ns = started.elapsed().as_nanos() as f64 / REQUESTS as f64;
        best = best.min(ns);
    }
    (best, latencies)
}

fn main() {
    println!("telemetry_overhead: perfmon sampler cost on the request path");

    let (off, lat_off) = measure(|| None);
    let (on50, lat_50) =
        measure(|| Some(TelemetryConfig::windowed(SimDuration::from_micros(50)).capacity(4096)));
    let (on10, lat_10) =
        measure(|| Some(TelemetryConfig::windowed(SimDuration::from_micros(10)).capacity(4096)));
    assert_eq!(lat_off, lat_50, "telemetry must not perturb simulated time");
    assert_eq!(lat_off, lat_10, "telemetry must not perturb simulated time");

    let pct = |on: f64| 100.0 * (on - off) / off;
    print_table(
        &format!("host ns per request, {REQUESTS} mixed requests x {VFS} VFs (best of {REPEATS})"),
        &["mode", "ns/request", "overhead %"],
        &[
            vec!["telemetry off".into(), fmt(off), "-".into()],
            vec!["50 us interval".into(), fmt(on50), fmt(pct(on50))],
            vec!["10 us interval".into(), fmt(on10), fmt(pct(on10))],
        ],
    );
    println!("\nsimulated per-request latencies identical across all modes");

    emit_json(
        "BENCH_telemetry",
        &serde_json::json!({
            "benchmark": "telemetry overhead, host wall clock",
            "unit": "host ns per simulated request",
            "invariant": "simulated per-request latencies are asserted identical across modes",
            "requests": REQUESTS,
            "off_ns_per_request": off,
            "on_50us_ns_per_request": on50,
            "on_10us_ns_per_request": on10,
            "overhead_50us_percent": pct(on50),
            "overhead_10us_percent": pct(on10),
        }),
    );
}
