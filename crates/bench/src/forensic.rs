//! Forensic-dump parsing and query helpers shared by the `forensics`
//! trigger harness and the `nesc-inspect` CLI.
//!
//! The workspace `serde_json` is a deliberately minimal *serialization*
//! shim — it has no deserializer — so this module carries a small
//! recursive-descent JSON parser that reads a forensic dump back into
//! shim [`serde_json::Value`]s, a typed view of the dump
//! ([`ForensicDump`]), and the query logic `nesc-inspect` exposes:
//! per-VF timelines, the "why was this request slow" breakdown (derived
//! two independent ways — from flight events and from the exemplar's
//! span tree — which must agree exactly), and top-K per-function
//! media/link contention attribution.

use nesc_sim::{FlightEvent, FlightEventKind};

// ---------------------------------------------------------------------------
// JSON parser (the shim has none)
// ---------------------------------------------------------------------------

/// Parses a JSON document into a shim [`serde_json::Value`].
///
/// Supports the full JSON grammar the dump writer emits: objects (order
/// preserved), arrays, strings with the standard escapes, integers
/// (`u64`/`i64`), floats, booleans, and `null`.
pub fn parse_json(input: &str) -> Result<serde_json::Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected '{}' at byte {}, got {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn literal(&mut self, word: &str, v: serde_json::Value) -> Result<serde_json::Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<serde_json::Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(serde_json::Value::String(self.string()?)),
            Some(b't') => self.literal("true", serde_json::Value::Bool(true)),
            Some(b'f') => self.literal("false", serde_json::Value::Bool(false)),
            Some(b'n') => self.literal("null", serde_json::Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<serde_json::Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(serde_json::Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(serde_json::Value::Object(entries)),
                got => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        got.map(|g| g as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<serde_json::Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(serde_json::Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(serde_json::Value::Array(items)),
                got => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        got.map(|g| g as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or("truncated \\u escape")? as char;
                            code = code * 16 + d.to_digit(16).ok_or("bad hex in \\u escape")?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-assemble a UTF-8 multi-byte sequence.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|e| format!("invalid UTF-8 in string at byte {start}: {e}"))?,
                    );
                    self.pos = end;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<serde_json::Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("non-UTF-8 number: {e}"))?;
        if float {
            let f: f64 = text.parse().map_err(|e| format!("bad float {text}: {e}"))?;
            Ok(serde_json::Value::Number(serde_json::Number::Float(f)))
        } else if text.starts_with('-') {
            let i: i64 = text.parse().map_err(|e| format!("bad int {text}: {e}"))?;
            Ok(serde_json::Value::Number(serde_json::Number::Int(i)))
        } else {
            let u: u64 = text.parse().map_err(|e| format!("bad uint {text}: {e}"))?;
            Ok(serde_json::Value::Number(serde_json::Number::UInt(u)))
        }
    }
}

// ---------------------------------------------------------------------------
// Value accessors (the shim has only `get`)
// ---------------------------------------------------------------------------

/// Reads a non-negative integer out of a shim [`serde_json::Value`].
pub fn as_u64(v: &serde_json::Value) -> Option<u64> {
    match v {
        serde_json::Value::Number(serde_json::Number::UInt(u)) => Some(*u),
        serde_json::Value::Number(serde_json::Number::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Reads an array slice out of a shim [`serde_json::Value`].
pub fn as_array(v: &serde_json::Value) -> Option<&[serde_json::Value]> {
    match v {
        serde_json::Value::Array(items) => Some(items),
        _ => None,
    }
}

/// Reads a string slice out of a shim [`serde_json::Value`].
pub fn as_str(v: &serde_json::Value) -> Option<&str> {
    match v {
        serde_json::Value::String(s) => Some(s),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Typed dump model
// ---------------------------------------------------------------------------

/// A span as stored in a dump exemplar (owned strings: the dump is data,
/// not `&'static str` interned names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpSpan {
    /// Span id (tracer numbering from the recording run).
    pub id: u64,
    /// Parent span id (0 = none).
    pub parent: u64,
    /// Layer label (`hv`, `core`, ...).
    pub layer: String,
    /// Span name (`device_wait`, `doorbell`, ...).
    pub name: String,
    /// Start, nanoseconds.
    pub start_ns: u64,
    /// End, nanoseconds.
    pub end_ns: u64,
    /// Integer attributes in recording order.
    pub attrs: Vec<(String, u64)>,
}

impl DumpSpan {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A worst-K exemplar from a dump: identity, latency, and the span
/// subtree captured at window close.
#[derive(Debug, Clone)]
pub struct DumpExemplar {
    /// Telemetry window the request completed in.
    pub window: u64,
    /// Device-wide request sequence number.
    pub seq: u64,
    /// Disk id.
    pub disk: u32,
    /// Completion time, nanoseconds.
    pub t_ns: u64,
    /// End-to-end latency, nanoseconds.
    pub latency_ns: u64,
    /// Root span id (0 when tracing was off).
    pub root: u64,
    /// Captured span subtree (root first).
    pub spans: Vec<DumpSpan>,
}

/// A parsed forensic dump: the triggering anomaly, the flight ring, the
/// exemplars, and the raw window series (kept as JSON for re-export).
#[derive(Debug, Clone)]
pub struct ForensicDump {
    /// Rule source text of the anomaly that triggered the dump.
    pub anomaly_text: String,
    /// Series the rule watched.
    pub anomaly_series: String,
    /// Window index the rule fired in.
    pub anomaly_window: u64,
    /// Ring capacity in slots.
    pub capacity: u64,
    /// Total events ever appended (≥ retained count when wrapped).
    pub total: u64,
    /// Events the ring overwrote.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Worst-K exemplars across retained windows.
    pub exemplars: Vec<DumpExemplar>,
    /// The `series` subdocument (perfmon `series_json` shape), verbatim.
    pub series: serde_json::Value,
}

impl ForensicDump {
    /// Parses a forensic dump document (as written by the `forensics`
    /// harness / `Telemetry::forensic_dump`).
    pub fn parse(text: &str) -> Result<ForensicDump, String> {
        let doc = parse_json(text)?;
        let anomaly = doc.get("anomaly").ok_or("dump has no `anomaly`")?;
        let flight = doc.get("flight").ok_or("dump has no `flight`")?;
        let series = doc
            .get("series")
            .cloned()
            .unwrap_or(serde_json::Value::Null);
        let field = |v: &serde_json::Value, k: &str| -> Result<u64, String> {
            v.get(k).and_then(as_u64).ok_or(format!("missing `{k}`"))
        };
        let mut events = Vec::new();
        for ev in as_array(flight.get("events").ok_or("flight has no `events`")?)
            .ok_or("`events` is not an array")?
        {
            let f = as_array(ev).ok_or("event is not an array")?;
            if f.len() != 5 {
                return Err(format!("event has {} fields, want 5", f.len()));
            }
            let kind_raw = as_u64(&f[1]).ok_or("event kind not an integer")? as u8;
            events.push(FlightEvent {
                t_ns: as_u64(&f[0]).ok_or("event t_ns not an integer")?,
                kind: FlightEventKind::from_u8(kind_raw)
                    .ok_or(format!("unknown event kind {kind_raw}"))?,
                func: as_u64(&f[2]).ok_or("event func not an integer")? as u32,
                a: as_u64(&f[3]).ok_or("event a not an integer")?,
                b: as_u64(&f[4]).ok_or("event b not an integer")?,
            });
        }
        let mut exemplars = Vec::new();
        for ex in as_array(flight.get("exemplars").ok_or("flight has no `exemplars`")?)
            .ok_or("`exemplars` is not an array")?
        {
            let mut spans = Vec::new();
            for sp in as_array(ex.get("spans").ok_or("exemplar has no `spans`")?)
                .ok_or("`spans` is not an array")?
            {
                let mut attrs = Vec::new();
                for kv in as_array(sp.get("attrs").ok_or("span has no `attrs`")?)
                    .ok_or("`attrs` is not an array")?
                {
                    let pair = as_array(kv).ok_or("attr is not a pair")?;
                    attrs.push((
                        as_str(&pair[0]).ok_or("attr key not a string")?.to_string(),
                        as_u64(&pair[1]).ok_or("attr value not an integer")?,
                    ));
                }
                spans.push(DumpSpan {
                    id: field(sp, "id")?,
                    parent: field(sp, "parent")?,
                    layer: as_str(sp.get("layer").ok_or("span has no `layer`")?)
                        .ok_or("`layer` not a string")?
                        .to_string(),
                    name: as_str(sp.get("name").ok_or("span has no `name`")?)
                        .ok_or("`name` not a string")?
                        .to_string(),
                    start_ns: field(sp, "start_ns")?,
                    end_ns: field(sp, "end_ns")?,
                    attrs,
                });
            }
            exemplars.push(DumpExemplar {
                window: field(ex, "window")?,
                seq: field(ex, "seq")?,
                disk: field(ex, "disk")? as u32,
                t_ns: field(ex, "t_ns")?,
                latency_ns: field(ex, "latency_ns")?,
                root: field(ex, "root")?,
                spans,
            });
        }
        Ok(ForensicDump {
            anomaly_text: as_str(anomaly.get("text").ok_or("anomaly has no `text`")?)
                .ok_or("`text` not a string")?
                .to_string(),
            anomaly_series: as_str(anomaly.get("series").ok_or("anomaly has no `series`")?)
                .ok_or("`series` not a string")?
                .to_string(),
            anomaly_window: field(anomaly, "window")?,
            capacity: field(flight, "capacity")?,
            total: field(flight, "total")?,
            dropped: field(flight, "dropped")?,
            events,
            exemplars,
            series,
        })
    }

    /// The retained events attributed to one VF (`func` field), oldest
    /// first. Walk/translation events carry a level rather than a VF in
    /// `func` and are excluded.
    pub fn vf_events(&self, vf: u32) -> Vec<&FlightEvent> {
        self.events
            .iter()
            .filter(|e| e.func == vf && !matches!(e.kind, FlightEventKind::BtlbMiss))
            .collect()
    }

    /// The worst exemplar (highest latency; ties break to the earlier
    /// sequence number, matching the recorder's fold order).
    pub fn worst_exemplar(&self) -> Option<&DumpExemplar> {
        self.exemplars
            .iter()
            .min_by(|a, b| b.latency_ns.cmp(&a.latency_ns).then(a.seq.cmp(&b.seq)))
    }

    /// Phase breakdown of request `seq` derived purely from flight
    /// events — the contract the `RequestStart`/`Doorbell`/
    /// `RequestComplete` payloads encode for the direct path:
    ///
    /// * `guest_submit` — request start to doorbell write begin
    /// * `doorbell`     — the doorbell MMIO itself
    /// * `device_wait`  — doorbell done to device completion
    /// * `guest_complete` — completion processing in the guest
    ///
    /// Returns `None` if any of the three anchor events fell out of the
    /// ring.
    pub fn breakdown_from_events(&self, seq: u64) -> Option<Vec<(&'static str, u64)>> {
        let find =
            |kind: FlightEventKind| self.events.iter().find(|e| e.kind == kind && e.a == seq);
        let start = find(FlightEventKind::RequestStart)?;
        let doorbell = find(FlightEventKind::Doorbell)?;
        let complete = find(FlightEventKind::RequestComplete)?;
        Some(vec![
            ("guest_submit", doorbell.b.saturating_sub(start.t_ns)),
            ("doorbell", doorbell.t_ns.saturating_sub(doorbell.b)),
            ("device_wait", complete.b.saturating_sub(doorbell.t_ns)),
            ("guest_complete", complete.t_ns.saturating_sub(complete.b)),
        ])
    }

    /// Phase breakdown of an exemplar derived from its captured span
    /// subtree: the root's direct children, durations summed by name in
    /// first-appearance order (the same contract as
    /// `SpanTree::child_breakdown`).
    pub fn breakdown_from_spans(ex: &DumpExemplar) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for s in ex.spans.iter().filter(|s| s.parent == ex.root) {
            match out.iter_mut().find(|(n, _)| *n == s.name) {
                Some((_, total)) => *total += s.duration_ns(),
                None => out.push((s.name.clone(), s.duration_ns())),
            }
        }
        out
    }

    /// Per-function busy-time attribution from `MediaService` /
    /// `LinkService` events: `(func, media_ns, link_ns)` sorted by total
    /// descending (ties to the lower function id), truncated to `k`.
    pub fn contention_top_k(&self, k: usize) -> Vec<(u32, u64, u64)> {
        let mut per_func: Vec<(u32, u64, u64)> = Vec::new();
        for e in &self.events {
            let busy = e.t_ns.saturating_sub(e.a);
            let slot = match per_func.iter_mut().find(|(f, _, _)| *f == e.func) {
                Some(s) => s,
                None => {
                    if !matches!(
                        e.kind,
                        FlightEventKind::MediaService | FlightEventKind::LinkService
                    ) {
                        continue;
                    }
                    per_func.push((e.func, 0, 0));
                    per_func.last_mut().expect("just pushed")
                }
            };
            match e.kind {
                FlightEventKind::MediaService => slot.1 += busy,
                FlightEventKind::LinkService => slot.2 += busy,
                _ => {}
            }
        }
        per_func.sort_by(|a, b| (b.1 + b.2).cmp(&(a.1 + a.2)).then(a.0.cmp(&b.0)));
        per_func.truncate(k);
        per_func
    }

    /// Re-exports the dump as a Chrome/Perfetto trace document: every
    /// exemplar span as a complete (`ph:"X"`) event on per-layer
    /// swimlanes, plus one counter track per window series, so the
    /// forensic evidence opens as one merged Perfetto view.
    pub fn perfetto_json(&self) -> serde_json::Value {
        let mut layers: Vec<&str> = Vec::new();
        for ex in &self.exemplars {
            for s in &ex.spans {
                if !layers.contains(&s.layer.as_str()) {
                    layers.push(&s.layer);
                }
            }
        }
        let mut events: Vec<serde_json::Value> = Vec::new();
        for (tid, layer) in layers.iter().enumerate() {
            events.push(serde_json::json!({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid + 1,
                "args": { "name": *layer },
            }));
        }
        for ex in &self.exemplars {
            for s in &ex.spans {
                let tid = layers.iter().position(|l| *l == s.layer).unwrap_or(0) + 1;
                let mut args: Vec<(String, serde_json::Value)> = vec![
                    ("span".to_string(), serde_json::Value::from(s.id)),
                    ("parent".to_string(), serde_json::Value::from(s.parent)),
                    ("exemplar_seq".to_string(), serde_json::Value::from(ex.seq)),
                ];
                for (k, v) in &s.attrs {
                    args.push((k.clone(), serde_json::Value::from(*v)));
                }
                events.push(serde_json::json!({
                    "name": s.name.clone(),
                    "cat": s.layer.clone(),
                    "ph": "X",
                    "ts": s.start_ns as f64 / 1_000.0,
                    "dur": s.duration_ns() as f64 / 1_000.0,
                    "pid": 1,
                    "tid": tid,
                    "args": serde_json::Value::Object(args),
                }));
            }
        }
        // Counter tracks from the dump's window series (perfmon
        // `series_json` shape: interval_ns + per-series samples).
        if let (Some(interval), Some(series)) = (
            self.series.get("interval_ns").and_then(as_u64),
            self.series.get("series").and_then(as_array),
        ) {
            for s in series {
                let (Some(name), Some(first), Some(samples)) = (
                    s.get("name").and_then(as_str),
                    s.get("first_window").and_then(as_u64),
                    s.get("samples").and_then(as_array),
                ) else {
                    continue;
                };
                for (i, v) in samples.iter().enumerate() {
                    let Some(v) = as_u64(v) else { continue };
                    let end_ns = (first + i as u64 + 1) * interval;
                    events.push(serde_json::json!({
                        "name": name,
                        "ph": "C",
                        "pid": 1,
                        "tid": 0,
                        "ts": end_ns as f64 / 1_000.0,
                        "args": { "value": v },
                    }));
                }
            }
        }
        serde_json::json!({
            "traceEvents": events,
            "displayTimeUnit": "ns",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_the_shim_writer() {
        let doc = serde_json::json!({
            "s": "a\"b\\c\nd",
            "u": 18446744073709551615u64,
            "i": -42,
            "f": 1.5,
            "t": true,
            "n": serde_json::Value::Null,
            "arr": [1, [2, 3], {"k": "v"}],
        });
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let back = parse_json(&text).unwrap();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&doc).unwrap()
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn parser_handles_unicode_strings() {
        let doc = serde_json::json!({ "s": "héllo→🚀" });
        let text = serde_json::to_string(&doc).unwrap();
        let back = parse_json(&text).unwrap();
        assert_eq!(as_str(back.get("s").unwrap()), Some("héllo→🚀"));
        let escaped = parse_json("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(as_str(&escaped), Some("Aé"));
    }

    #[test]
    fn contention_sums_busy_time_per_func() {
        let mk = |kind, func, a, t| FlightEvent {
            t_ns: t,
            kind,
            func,
            a,
            b: 1,
        };
        let dump = ForensicDump {
            anomaly_text: String::new(),
            anomaly_series: String::new(),
            anomaly_window: 0,
            capacity: 16,
            total: 4,
            dropped: 0,
            events: vec![
                mk(FlightEventKind::MediaService, 1, 100, 300),
                mk(FlightEventKind::LinkService, 1, 300, 350),
                mk(FlightEventKind::MediaService, 2, 400, 450),
                mk(FlightEventKind::Doorbell, 3, 0, 10),
            ],
            exemplars: Vec::new(),
            series: serde_json::Value::Null,
        };
        let top = dump.contention_top_k(10);
        assert_eq!(top, vec![(1, 200, 50), (2, 50, 0)]);
    }

    #[test]
    fn event_breakdown_follows_the_payload_contract() {
        let dump = ForensicDump {
            anomaly_text: String::new(),
            anomaly_series: String::new(),
            anomaly_window: 0,
            capacity: 16,
            total: 3,
            dropped: 0,
            events: vec![
                FlightEvent {
                    t_ns: 1000,
                    kind: FlightEventKind::RequestStart,
                    func: 1,
                    a: 7,
                    b: 0,
                },
                FlightEvent {
                    t_ns: 1300,
                    kind: FlightEventKind::Doorbell,
                    func: 1,
                    a: 7,
                    b: 1200,
                },
                FlightEvent {
                    t_ns: 5000,
                    kind: FlightEventKind::RequestComplete,
                    func: 1,
                    a: 7,
                    b: 4600,
                },
            ],
            exemplars: Vec::new(),
            series: serde_json::Value::Null,
        };
        assert_eq!(
            dump.breakdown_from_events(7),
            Some(vec![
                ("guest_submit", 200),
                ("doorbell", 100),
                ("device_wait", 3300),
                ("guest_complete", 400),
            ])
        );
        assert_eq!(dump.breakdown_from_events(8), None);
    }
}
