#![warn(missing_docs)]

//! Shared helpers for the figure-regeneration harnesses.
//!
//! Every table and figure in the NeSC paper's evaluation (§VII) has a
//! binary in `src/bin/` that regenerates it against the simulated system:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig2_direct_speedup` | Fig. 2 — direct-assignment speedup over virtio vs. device bandwidth |
//! | `fig9_latency` | Fig. 9 — raw access latency vs. block size, all paths |
//! | `fig10_bandwidth` | Fig. 10 — raw bandwidth vs. block size, all paths |
//! | `fig11_fs_overhead` | Fig. 11 — filesystem overhead on write latency |
//! | `fig12_apps` | Fig. 12a/b — application speedups |
//! | `table1_platform` | Table I — experimental platform |
//! | `table2_benchmarks` | Table II — benchmark list |
//! | `ablation_btlb` | BTLB size sweep (design choice, §V-B) |
//! | `ablation_walk_overlap` | walk-unit overlap on/off (§V-B) |
//! | `ablation_tree_depth` | extent-tree depth vs. translation cost (§IV-B) |
//! | `ablation_scheduler` | round-robin fairness across VFs (§V-A) |
//!
//! Each binary prints a human-readable table and writes machine-readable
//! JSON under `results/`.

pub mod forensic;
pub mod hotpath;

use std::fs;
use std::path::Path;

use nesc_hypervisor::{DiskId, DiskKind, System, SystemBuilder, VmId};

/// Builds the standard experimental system: the VC707-calibrated device
/// (with the prototype's trampoline-copy pessimism, as measured in the
/// paper) and one disk of `size_bytes` on the requested path.
pub fn standard_system(kind: DiskKind, size_bytes: u64) -> (System, VmId, DiskId) {
    let mut sys = SystemBuilder::new().with_trampoline().build();
    let p = sys.quick_disk(kind, "bench.img", size_bytes);
    (sys, p.vm, p.disk)
}

/// The four paths the paper compares, with its labels.
pub fn all_paths() -> [(DiskKind, &'static str); 4] {
    [
        (DiskKind::NescDirect, "NeSC"),
        (DiskKind::Virtio, "virtio"),
        (DiskKind::Emulated, "Emulation"),
        (DiskKind::HostRaw, "Host"),
    ]
}

/// The block sizes of the paper's Figs. 9–11 sweeps (512 B – 32 KiB).
pub fn paper_block_sizes() -> Vec<u64> {
    vec![512, 1024, 2048, 4096, 8192, 16384, 32768]
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

/// Writes a JSON document under `results/<name>.json`.
pub fn emit_json(name: &str, value: &serde_json::Value) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = fs::write(&path, s);
            println!("\n[results written to {}]", path.display());
        }
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_system_builds_every_path() {
        for (kind, _) in all_paths() {
            let (sys, _, disk) = standard_system(kind, 4 << 20);
            assert_eq!(sys.disk_kind(disk), kind);
        }
    }

    #[test]
    fn block_sizes_match_paper_range() {
        let sizes = paper_block_sizes();
        assert_eq!(*sizes.first().unwrap(), 512);
        assert_eq!(*sizes.last().unwrap(), 32768);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(123.456), "123");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.234), "1.23");
    }
}
