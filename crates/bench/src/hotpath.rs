//! Wall-clock hot-path harness.
//!
//! Drives a [`NescDevice`] with block streams and measures how fast the
//! *simulator* chews through them (host nanoseconds per simulated block).
//! This is the tracking harness for the extent-run batching of the data
//! path: the same stream can be run with batching disabled
//! (`max_run_blocks = 1`, the historical block-at-a-time loop) and enabled
//! (unbounded runs), and because run batching is simulated-timing-neutral
//! the two runs must also agree exactly on every simulated number — the
//! harness checks that invariant on every measurement.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use nesc_core::{FuncId, NescConfig, NescDevice};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::{HostAddr, HostMemory};
use nesc_sim::{SimDuration, SimRng, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};

/// Virtual device size the harness exposes, in blocks (128 MiB).
pub const DEVICE_BLOCKS: u64 = 1 << 17;
/// Extent length used for the mapping (2 MiB file extents — long enough
/// that a 64 KiB request usually sits inside one extent).
pub const EXTENT_BLOCKS: u64 = 2048;

/// One hot-path measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct HotpathConfig {
    /// BTLB capacity (the ablation axis: 0, 8, 32).
    pub btlb_entries: usize,
    /// Run-batching cap; `1` is the per-block baseline.
    pub max_run_blocks: u64,
    /// Blocks per request (4 = 4 KiB, 64 = 64 KiB).
    pub req_blocks: u64,
    /// Sequential stream (wrapping) vs uniform-random aligned offsets.
    pub sequential: bool,
    /// Requests to drive.
    pub requests: u64,
}

/// What one measurement produced.
#[derive(Debug, Clone, Copy)]
pub struct HotpathRun {
    /// Host-side nanoseconds of processing per simulated block.
    pub wall_ns_per_block: f64,
    /// Simulated time of the last completion — must be identical across
    /// `max_run_blocks` settings.
    pub simulated_last_ns: u64,
    /// Total blocks moved.
    pub blocks: u64,
    /// BTLB per-block hits at the end (also batching-invariant).
    pub btlb_hits: u64,
    /// Tree walks performed (simulated count; batching-invariant).
    pub walks: u64,
}

/// Builds the measurement device: a VF whose extent tree maps
/// [`DEVICE_BLOCKS`] blocks in [`EXTENT_BLOCKS`]-sized extents (physically
/// shifted so the mapping is not the identity), plus a host buffer big
/// enough for `req_blocks`.
pub fn build_device(
    btlb_entries: usize,
    max_run_blocks: u64,
    req_blocks: u64,
) -> (NescDevice, FuncId, HostAddr) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = DEVICE_BLOCKS * 2;
    cfg.btlb_entries = btlb_entries;
    cfg.max_run_blocks = max_run_blocks;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let tree: ExtentTree = (0..DEVICE_BLOCKS / EXTENT_BLOCKS)
        .map(|i| {
            ExtentMapping::new(
                Vlba(i * EXTENT_BLOCKS),
                Plba(i * EXTENT_BLOCKS + DEVICE_BLOCKS / 2),
                EXTENT_BLOCKS,
            )
        })
        .collect();
    let root = tree.serialize(&mut mem.borrow_mut());
    let vf = dev.create_vf(root, DEVICE_BLOCKS).unwrap();
    let buf = mem.borrow_mut().alloc(req_blocks * BLOCK_SIZE, BLOCK_SIZE);
    (dev, vf, buf)
}

/// The vLBA of request `i` under the configured stream shape. Random
/// streams draw from a deterministic generator so every batching mode
/// sees the identical request sequence.
fn stream_lba(cfg: &HotpathConfig, rng: &mut SimRng, i: u64) -> Vlba {
    let slots = DEVICE_BLOCKS / cfg.req_blocks;
    if cfg.sequential {
        Vlba((i % slots) * cfg.req_blocks)
    } else {
        Vlba(rng.range(0, slots) * cfg.req_blocks)
    }
}

/// Runs one measurement: submits `cfg.requests` read requests and times
/// the submit+advance processing loop.
pub fn measure(cfg: HotpathConfig) -> HotpathRun {
    let (mut dev, vf, buf) = build_device(cfg.btlb_entries, cfg.max_run_blocks, cfg.req_blocks);
    let mut rng = SimRng::seed(0x5eed_0dd5);
    let horizon = SimTime::from_nanos(u64::MAX / 4);
    let mut t = SimTime::ZERO;
    let mut last = SimTime::ZERO;
    // Reused across the whole run so the steady-state loop never touches
    // the allocator (asserted by the `alloc_steady` integration test).
    let mut outs: Vec<nesc_core::NescOutput> = Vec::with_capacity(64);
    // nesc-lint::allow(D1): this harness *measures host wall-clock* per
    // simulated block — the one place wall time is the subject, not an
    // input; it never feeds simulated state.
    let started = Instant::now();
    for i in 0..cfg.requests {
        t += SimDuration::from_micros(100);
        let lba = stream_lba(&cfg, &mut rng, i);
        dev.submit(
            t,
            vf,
            BlockRequest::new(RequestId(i + 1), BlockOp::Read, lba, cfg.req_blocks),
            buf,
        );
        outs.clear();
        dev.advance_into(horizon, &mut outs);
        for out in std::hint::black_box(&outs) {
            last = last.max(out.at());
        }
    }
    let wall = started.elapsed();
    let blocks = cfg.requests * cfg.req_blocks;
    HotpathRun {
        wall_ns_per_block: wall.as_nanos() as f64 / blocks as f64,
        simulated_last_ns: last.as_nanos(),
        blocks,
        btlb_hits: dev.btlb().hits(),
        walks: dev.stats().walks,
    }
}

/// Interleaved A/B repeats per mode: alternating per-block and batched
/// runs means thermal / frequency drift hits both modes equally instead
/// of biasing whichever ran last, and the per-mode *minimum* is the run
/// least disturbed by the host — the standard way to read a wall-clock
/// microbenchmark on a shared machine.
pub const MEASURE_REPEATS: usize = 5;

/// Measures a config both per-block (`max_run_blocks = 1`) and batched
/// (unbounded) — interleaved, min-of-[`MEASURE_REPEATS`] wall time —
/// panicking if any simulated quantity diverges across modes or repeats:
/// the timing-neutrality invariant this whole optimization rests on.
pub fn measure_pair(mut cfg: HotpathConfig) -> (HotpathRun, HotpathRun) {
    cfg.max_run_blocks = 1;
    let mut per_block = measure(cfg);
    cfg.max_run_blocks = u64::MAX;
    let mut batched = measure(cfg);
    for _ in 1..MEASURE_REPEATS {
        cfg.max_run_blocks = 1;
        let p = measure(cfg);
        cfg.max_run_blocks = u64::MAX;
        let b = measure(cfg);
        assert_eq!(
            p.simulated_last_ns, per_block.simulated_last_ns,
            "simulated results must not vary across repeats ({cfg:?})"
        );
        assert_eq!(
            b.simulated_last_ns, batched.simulated_last_ns,
            "simulated results must not vary across repeats ({cfg:?})"
        );
        per_block.wall_ns_per_block = per_block.wall_ns_per_block.min(p.wall_ns_per_block);
        batched.wall_ns_per_block = batched.wall_ns_per_block.min(b.wall_ns_per_block);
    }
    assert_eq!(
        per_block.simulated_last_ns, batched.simulated_last_ns,
        "run batching changed simulated completion time ({cfg:?})"
    );
    assert_eq!(
        per_block.btlb_hits, batched.btlb_hits,
        "run batching changed BTLB accounting ({cfg:?})"
    );
    assert_eq!(
        per_block.walks, batched.walks,
        "run batching changed walk counts ({cfg:?})"
    );
    (per_block, batched)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The invariance assertions inside `measure_pair` are the real test;
    /// a small stream keeps it cheap enough for the unit suite.
    #[test]
    fn batched_and_per_block_agree_on_simulated_results() {
        for sequential in [true, false] {
            for btlb in [0usize, 8] {
                let (pb, ba) = measure_pair(HotpathConfig {
                    btlb_entries: btlb,
                    max_run_blocks: 1,
                    req_blocks: 16,
                    sequential,
                    requests: 40,
                });
                assert_eq!(pb.blocks, ba.blocks);
                assert!(pb.simulated_last_ns > 0);
            }
        }
    }
}
