//! Interconnect enumeration and MMIO routing.
//!
//! At boot, firmware scans the bus, sizes each function's BARs and assigns
//! them disjoint ranges of the host's logical address space (paper §V:
//! "BARs ... are mapped to the system's logical address space when the PCIe
//! interconnect is scanned"). The hypervisor can then map a VF's BAR
//! directly into a guest's address space.
//!
//! [`Interconnect`] reproduces exactly that: devices register their config
//! spaces, [`Interconnect::enumerate`] assigns addresses (including slicing
//! the SR-IOV VF aperture into per-VF BARs), and [`Interconnect::route`]
//! answers which function an MMIO address belongs to — the mechanism by
//! which a NeSC request is *unforgeably* attributed to the VF it was sent
//! to.

use crate::addr::Bdf;
use crate::config::ConfigSpace;

/// Result of routing an MMIO address: which function's BAR it hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmioRoute {
    /// The function that owns the address.
    pub bdf: Bdf,
    /// Which BAR of the function (VF BAR slices are BAR 0 of the VF).
    pub bar: usize,
    /// Byte offset within the BAR.
    pub offset: u64,
}

#[derive(Debug, Clone)]
struct Window {
    base: u64,
    size: u64,
    bdf: Bdf,
    bar: usize,
}

/// The PCIe interconnect: registered devices and (after enumeration) the
/// address windows of every physical and virtual function.
///
/// # Example
///
/// ```
/// use nesc_pcie::{Interconnect, ConfigSpace, Bdf};
///
/// let mut ic = Interconnect::new();
/// let pf = Bdf::new(3, 0, 0);
/// let mut cfg = ConfigSpace::nesc_pf();
/// cfg.sriov.as_mut().unwrap().enable(4).unwrap();
/// ic.attach(pf, cfg);
/// ic.enumerate();
///
/// // The PF and each enabled VF got a BAR window:
/// let pf_bar = ic.bar_base(pf, 0).unwrap();
/// let vf0 = ic.functions().iter().copied().find(|&b| b != pf).unwrap();
/// let vf0_bar = ic.bar_base(vf0, 0).unwrap();
/// assert_ne!(pf_bar, vf0_bar);
/// let hit = ic.route(vf0_bar + 16).unwrap();
/// assert_eq!(hit.bdf, vf0);
/// assert_eq!(hit.offset, 16);
/// ```
#[derive(Debug, Default)]
pub struct Interconnect {
    devices: Vec<(Bdf, ConfigSpace)>,
    windows: Vec<Window>,
    enumerated: bool,
}

/// Base of the MMIO aperture used for BAR assignment (a typical PC layout
/// puts 32-bit BARs just below 4 GiB).
const MMIO_BASE: u64 = 0xE000_0000;

impl Interconnect {
    /// Creates an empty interconnect.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a device function at the given address. Attaching after
    /// enumeration or at an occupied BDF (contract violations — hotplug
    /// is modeled at the VF layer, not here) is ignored.
    pub fn attach(&mut self, bdf: Bdf, config: ConfigSpace) {
        debug_assert!(!self.enumerated, "cannot attach after enumeration");
        let duplicate = self.devices.iter().any(|(b, _)| *b == bdf);
        debug_assert!(!duplicate, "duplicate BDF {bdf}");
        if self.enumerated || duplicate {
            return;
        }
        self.devices.push((bdf, config));
    }

    /// Scans the bus: assigns every PF BAR and every enabled VF BAR a
    /// disjoint, naturally-aligned window.
    pub fn enumerate(&mut self) {
        let mut cursor = MMIO_BASE;
        let mut alloc = |size: u64| {
            let base = (cursor + size - 1) & !(size - 1);
            cursor = base + size;
            base
        };
        self.windows.clear();
        for (bdf, cfg) in &self.devices {
            for (i, bar) in cfg.bars.iter().enumerate() {
                self.windows.push(Window {
                    base: alloc(bar.size),
                    size: bar.size,
                    bdf: *bdf,
                    bar: i,
                });
            }
            if let Some(sriov) = &cfg.sriov {
                // The VF aperture is one contiguous region sliced per VF.
                let n = sriov.num_vfs() as u64;
                if n > 0 {
                    let slice = sriov.vf_bar_size();
                    let aperture = alloc(slice * n.next_power_of_two());
                    for v in 0..n {
                        self.windows.push(Window {
                            base: aperture + v * slice,
                            size: slice,
                            bdf: sriov.vf_bdf(*bdf, v as u16),
                            bar: 0,
                        });
                    }
                }
            }
        }
        self.enumerated = true;
    }

    /// All functions visible after enumeration (PFs and enabled VFs).
    pub fn functions(&self) -> Vec<Bdf> {
        let mut v: Vec<Bdf> = self.windows.iter().map(|w| w.bdf).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The assigned base address of `bar` of function `bdf`, if enumerated.
    pub fn bar_base(&self, bdf: Bdf, bar: usize) -> Option<u64> {
        self.windows
            .iter()
            .find(|w| w.bdf == bdf && w.bar == bar)
            .map(|w| w.base)
    }

    /// Routes a host logical address to the function window containing it.
    pub fn route(&self, addr: u64) -> Option<MmioRoute> {
        self.windows
            .iter()
            .find(|w| addr >= w.base && addr < w.base + w.size)
            .map(|w| MmioRoute {
                bdf: w.bdf,
                bar: w.bar,
                offset: addr - w.base,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BarDesc;

    fn nesc_with_vfs(n: u16) -> Interconnect {
        let mut ic = Interconnect::new();
        let mut cfg = ConfigSpace::nesc_pf();
        cfg.sriov.as_mut().unwrap().enable(n).unwrap();
        ic.attach(Bdf::new(3, 0, 0), cfg);
        ic.enumerate();
        ic
    }

    #[test]
    fn enumeration_assigns_disjoint_windows() {
        let ic = nesc_with_vfs(64);
        let mut ranges: Vec<(u64, u64)> = ic
            .windows
            .iter()
            .map(|w| (w.base, w.base + w.size))
            .collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "windows overlap: {pair:?}");
        }
        assert_eq!(ic.functions().len(), 65); // PF + 64 VFs
    }

    #[test]
    fn routing_hits_the_right_function() {
        let ic = nesc_with_vfs(2);
        for f in ic.functions() {
            let base = ic.bar_base(f, 0).unwrap();
            let hit = ic.route(base + 100).unwrap();
            assert_eq!(hit.bdf, f);
            assert_eq!(hit.offset, 100);
        }
    }

    #[test]
    fn unmapped_address_routes_nowhere() {
        let ic = nesc_with_vfs(1);
        assert!(ic.route(0x1000).is_none());
        assert!(ic.route(u64::MAX).is_none());
    }

    #[test]
    fn multiple_devices_coexist() {
        let mut ic = Interconnect::new();
        ic.attach(Bdf::new(3, 0, 0), ConfigSpace::nesc_pf());
        ic.attach(Bdf::new(4, 0, 0), ConfigSpace::plain_storage());
        ic.enumerate();
        assert!(ic.bar_base(Bdf::new(3, 0, 0), 0).is_some());
        assert!(ic.bar_base(Bdf::new(4, 0, 0), 0).is_some());
    }

    #[test]
    fn bars_are_naturally_aligned() {
        let mut ic = Interconnect::new();
        let cfg = ConfigSpace {
            vendor_id: 1,
            device_id: 1,
            class_code: 1,
            bars: vec![BarDesc::new(1 << 20, true), BarDesc::new(4096, false)],
            sriov: None,
        };
        ic.attach(Bdf::new(1, 0, 0), cfg);
        ic.enumerate();
        let b0 = ic.bar_base(Bdf::new(1, 0, 0), 0).unwrap();
        let b1 = ic.bar_base(Bdf::new(1, 0, 0), 1).unwrap();
        assert_eq!(b0 % (1 << 20), 0);
        assert_eq!(b1 % 4096, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate BDF")]
    fn duplicate_attach_panics() {
        let mut ic = Interconnect::new();
        ic.attach(Bdf::new(1, 0, 0), ConfigSpace::plain_storage());
        ic.attach(Bdf::new(1, 0, 0), ConfigSpace::plain_storage());
    }
}
