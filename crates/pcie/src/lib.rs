#![warn(missing_docs)]

//! PCIe interconnect model for the NeSC reproduction.
//!
//! NeSC (MICRO 2016) is a PCIe storage controller that uses **SR-IOV** to
//! expose one *physical function* (PF) plus many *virtual functions* (VFs),
//! each with its own PCIe address, so that a hypervisor can map a VF straight
//! into a guest VM. This crate provides the interconnect substrate that the
//! controller model (crate `nesc-core`) plugs into:
//!
//! * [`Bdf`] — `bus:device.function` addressing, including the SR-IOV VF
//!   routing-ID arithmetic.
//! * [`HostMemory`] — the host's physical memory as a sparse page store; the
//!   device reads extent-tree nodes and DMA buffers out of it *by content*,
//!   exactly like the real device walks host-resident trees.
//! * [`PcieLink`] — transaction-level timing: transfers are segmented into
//!   TLPs with header overhead, serialized over the link's bandwidth, plus a
//!   base round-trip latency for non-posted requests.
//! * [`ConfigSpace`] / [`SriovCapability`] — enough configuration-space
//!   structure for enumeration and VF enable/disable.
//! * [`Interconnect`] — BAR address assignment and MMIO routing.
//! * [`MsiVector`] — message-signalled interrupt identities.
//!
//! The model is deliberately transaction-level (not symbol-level): the
//! paper's performance effects come from per-TLP overheads, link bandwidth,
//! and round-trip latencies, all of which are captured here.

pub mod addr;
pub mod config;
pub mod interconnect;
pub mod link;
pub mod memory;
pub mod msi;

pub use addr::Bdf;
pub use config::{BarDesc, ConfigSpace, SriovCapability};
pub use interconnect::{Interconnect, MmioRoute};
pub use link::{DmaTiming, LinkGeneration, LinkParams, PcieLink};
pub use memory::{HostAddr, HostMemory};
pub use msi::MsiVector;
