//! Configuration space and the SR-IOV capability.
//!
//! Only the structure the reproduction needs is modeled: device identity,
//! BAR sizes for enumeration, and the SR-IOV capability that lets the
//! hypervisor enable a number of virtual functions. VF BARs are allocated as
//! one contiguous region (per the SR-IOV spec, the PF's capability holds a
//! single VF-BAR aperture that is sliced per VF).

use crate::addr::Bdf;

/// Description of one base address register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarDesc {
    /// Size of the region in bytes; must be a power of two per the spec.
    pub size: u64,
    /// Whether the region is prefetchable (unused by the model's logic, but
    /// part of the device identity).
    pub prefetchable: bool,
}

impl BarDesc {
    /// Creates a BAR description.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn new(size: u64, prefetchable: bool) -> Self {
        assert!(size.is_power_of_two(), "BAR size must be a power of two");
        BarDesc { size, prefetchable }
    }
}

/// The Single-Root I/O Virtualization capability of a physical function.
///
/// # Example
///
/// ```
/// use nesc_pcie::{SriovCapability, Bdf};
/// let mut cap = SriovCapability::new(64, 1, 1, 4096);
/// cap.enable(8).unwrap();
/// let pf = Bdf::new(3, 0, 0);
/// assert_eq!(cap.vf_bdf(pf, 0).to_string(), "03:00.1");
/// assert_eq!(cap.vf_bdf(pf, 7).to_string(), "03:01.0");
/// ```
#[derive(Debug, Clone)]
pub struct SriovCapability {
    total_vfs: u16,
    num_vfs: u16,
    first_vf_offset: u16,
    vf_stride: u16,
    vf_bar_size: u64,
}

/// Error enabling virtual functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SriovError {
    /// Requested more VFs than the device supports.
    TooManyVfs {
        /// Number requested.
        requested: u16,
        /// Device capability maximum.
        supported: u16,
    },
}

impl std::fmt::Display for SriovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SriovError::TooManyVfs {
                requested,
                supported,
            } => write!(
                f,
                "requested {requested} virtual functions but device supports {supported}"
            ),
        }
    }
}

impl std::error::Error for SriovError {}

impl SriovCapability {
    /// Creates a capability supporting up to `total_vfs` virtual functions.
    ///
    /// # Panics
    ///
    /// Panics if `total_vfs` or `vf_stride` is zero, or `vf_bar_size` is not
    /// a power of two.
    pub fn new(total_vfs: u16, first_vf_offset: u16, vf_stride: u16, vf_bar_size: u64) -> Self {
        assert!(total_vfs > 0, "device must support at least one VF");
        assert!(vf_stride > 0, "VF stride must be positive");
        assert!(
            vf_bar_size.is_power_of_two(),
            "VF BAR size must be a power of two"
        );
        SriovCapability {
            total_vfs,
            num_vfs: 0,
            first_vf_offset,
            vf_stride,
            vf_bar_size,
        }
    }

    /// Maximum virtual functions the hardware supports.
    pub fn total_vfs(&self) -> u16 {
        self.total_vfs
    }

    /// Currently enabled virtual functions.
    pub fn num_vfs(&self) -> u16 {
        self.num_vfs
    }

    /// Size of each VF's BAR slice.
    pub fn vf_bar_size(&self) -> u64 {
        self.vf_bar_size
    }

    /// Enables `n` virtual functions.
    ///
    /// # Errors
    ///
    /// Returns [`SriovError::TooManyVfs`] if `n` exceeds the capability.
    pub fn enable(&mut self, n: u16) -> Result<(), SriovError> {
        if n > self.total_vfs {
            return Err(SriovError::TooManyVfs {
                requested: n,
                supported: self.total_vfs,
            });
        }
        self.num_vfs = n;
        Ok(())
    }

    /// Disables all virtual functions.
    pub fn disable(&mut self) {
        self.num_vfs = 0;
    }

    /// The PCIe address of VF `index` for a PF at `pf`. An out-of-range
    /// index (a contract violation) is clamped to the last VF.
    pub fn vf_bdf(&self, pf: Bdf, index: u16) -> Bdf {
        debug_assert!(index < self.total_vfs, "VF index out of range");
        let index = index.min(self.total_vfs.saturating_sub(1));
        pf.offset_by(self.first_vf_offset + index * self.vf_stride)
    }
}

/// A function's configuration space, as visible to enumeration software.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    /// PCI vendor ID.
    pub vendor_id: u16,
    /// PCI device ID.
    pub device_id: u16,
    /// Class code (0x01 = mass storage).
    pub class_code: u8,
    /// Base address registers exposed by the function.
    pub bars: Vec<BarDesc>,
    /// SR-IOV capability, present on self-virtualizing physical functions.
    pub sriov: Option<SriovCapability>,
}

impl ConfigSpace {
    /// A NeSC physical function: one 128 KiB register BAR (the prototype
    /// uses a single SRAM array of 2 KiB of control registers per function,
    /// 64 VFs + PF — paper §V), SR-IOV with 64 VFs.
    pub fn nesc_pf() -> Self {
        ConfigSpace {
            vendor_id: 0x1D0F,
            device_id: 0x6E5C, // "NeSC"
            class_code: 0x01,
            bars: vec![BarDesc::new(128 * 1024, false)],
            sriov: Some(SriovCapability::new(64, 1, 1, 4096)),
        }
    }

    /// A conventional (non-self-virtualizing) storage controller.
    pub fn plain_storage() -> Self {
        ConfigSpace {
            vendor_id: 0x1D0F,
            device_id: 0x0D15,
            class_code: 0x01,
            bars: vec![BarDesc::new(16 * 1024, false)],
            sriov: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_within_capability() {
        let mut cap = SriovCapability::new(64, 1, 1, 4096);
        assert!(cap.enable(64).is_ok());
        assert_eq!(cap.num_vfs(), 64);
        cap.disable();
        assert_eq!(cap.num_vfs(), 0);
    }

    #[test]
    fn enable_beyond_capability_fails() {
        let mut cap = SriovCapability::new(8, 1, 1, 4096);
        let err = cap.enable(9).unwrap_err();
        assert_eq!(
            err,
            SriovError::TooManyVfs {
                requested: 9,
                supported: 8
            }
        );
        assert!(err.to_string().contains("9"));
    }

    #[test]
    fn vf_bdfs_are_distinct() {
        let cap = SriovCapability::new(64, 1, 1, 4096);
        let pf = Bdf::new(3, 0, 0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            assert!(seen.insert(cap.vf_bdf(pf, i)));
        }
        assert!(!seen.contains(&pf), "no VF aliases the PF");
    }

    #[test]
    fn stride_spreads_addresses() {
        let cap = SriovCapability::new(4, 4, 2, 4096);
        let pf = Bdf::new(0, 0, 0);
        assert_eq!(cap.vf_bdf(pf, 0).routing_id(), 4);
        assert_eq!(cap.vf_bdf(pf, 1).routing_id(), 6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bar_size_must_be_pow2() {
        BarDesc::new(3000, false);
    }

    #[test]
    fn canned_config_spaces() {
        let pf = ConfigSpace::nesc_pf();
        assert!(pf.sriov.is_some());
        assert_eq!(pf.class_code, 0x01);
        assert!(ConfigSpace::plain_storage().sriov.is_none());
    }
}
