//! Transaction-level PCIe link timing.
//!
//! Transfers are segmented into TLPs of at most `max_payload` bytes, each
//! carrying a fixed header, and serialized over the link's effective
//! bandwidth. Non-posted requests (DMA reads, MMIO reads) additionally pay a
//! round-trip latency; posted writes pay a one-way propagation delay.
//!
//! The NeSC prototype used PCIe **gen2 x8** (the Virtex-7 on the VC707 does
//! not support gen3), which caps it around 3.2 GB/s effective — the paper
//! notes its ~1 GB/s prototype is limited by the academic DMA engine rather
//! than the link. Both the link and DMA-engine ceilings are modeled.

use nesc_sim::{ServiceUnit, SimDuration, SimTime, SpanId, Tracer};

/// PCIe signalling generation; determines per-lane effective bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkGeneration {
    /// 2.5 GT/s, 8b/10b encoding → 250 MB/s per lane.
    Gen1,
    /// 5 GT/s, 8b/10b encoding → 500 MB/s per lane (the NeSC prototype).
    Gen2,
    /// 8 GT/s, 128b/130b encoding → ~985 MB/s per lane.
    Gen3,
}

impl LinkGeneration {
    /// Effective data bandwidth of one lane, in bytes per second.
    pub fn lane_bytes_per_sec(self) -> u64 {
        match self {
            LinkGeneration::Gen1 => 250_000_000,
            LinkGeneration::Gen2 => 500_000_000,
            LinkGeneration::Gen3 => 984_600_000,
        }
    }
}

/// Physical and protocol parameters of a link.
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// Signalling generation.
    pub generation: LinkGeneration,
    /// Number of lanes (x1/x4/x8/x16).
    pub lanes: u32,
    /// Maximum TLP payload in bytes (256 is the common configured value).
    pub max_payload: u64,
    /// TLP header + framing overhead in bytes (3-4 DW header + framing).
    pub tlp_header_bytes: u64,
    /// Fixed per-TLP processing time in the end-points.
    pub per_tlp_processing: SimDuration,
    /// One-way propagation + root-complex forwarding delay (posted writes).
    pub posted_latency: SimDuration,
    /// Request→completion round-trip latency for non-posted reads, on top of
    /// wire occupancy (root complex + host memory controller).
    pub read_round_trip: SimDuration,
}

impl LinkParams {
    /// The NeSC prototype's link: PCIe gen2 x8.
    pub fn gen2_x8() -> Self {
        LinkParams {
            generation: LinkGeneration::Gen2,
            lanes: 8,
            max_payload: 256,
            tlp_header_bytes: 26,
            per_tlp_processing: SimDuration::from_nanos(10),
            posted_latency: SimDuration::from_nanos(200),
            read_round_trip: SimDuration::from_nanos(600),
        }
    }

    /// A modern link: PCIe gen3 x8 (what a commercial NeSC would use).
    pub fn gen3_x8() -> Self {
        LinkParams {
            generation: LinkGeneration::Gen3,
            lanes: 8,
            max_payload: 256,
            tlp_header_bytes: 26,
            per_tlp_processing: SimDuration::from_nanos(8),
            posted_latency: SimDuration::from_nanos(150),
            read_round_trip: SimDuration::from_nanos(450),
        }
    }

    /// Effective link bandwidth in bytes per second.
    pub fn bandwidth(&self) -> u64 {
        self.generation.lane_bytes_per_sec() * self.lanes as u64
    }

    /// Number of TLPs needed for a payload of `bytes` (at least one, for
    /// zero-length control messages).
    pub fn tlp_count(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.max_payload).max(1)
    }

    /// Wire occupancy of a transfer of `bytes`: payload + headers at link
    /// bandwidth, plus per-TLP processing.
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        let tlps = self.tlp_count(bytes);
        let wire_bytes = bytes + tlps * self.tlp_header_bytes;
        SimDuration::for_bytes(wire_bytes, self.bandwidth()) + self.per_tlp_processing * tlps
    }
}

/// Timing of one DMA transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTiming {
    /// When the link started carrying this transaction.
    pub start: SimTime,
    /// When the last TLP left the wire (link free again).
    pub wire_end: SimTime,
    /// When the initiator observes completion (includes latency).
    pub complete: SimTime,
}

impl DmaTiming {
    /// Total initiator-observed latency measured from `issued`.
    pub fn latency_since(&self, issued: SimTime) -> SimDuration {
        self.complete.saturating_since(issued)
    }
}

/// A full-duplex PCIe link modeled as two independent half-links (one per
/// direction), each a FIFO timeline.
///
/// Directions are named from the device's point of view: *upstream* carries
/// device→host traffic (DMA writes to host memory, read completions toward
/// the device share the downstream path of the host... see method docs),
/// *downstream* carries host→device traffic.
///
/// # Example
///
/// ```
/// use nesc_pcie::{PcieLink, LinkParams};
/// use nesc_sim::SimTime;
///
/// let mut link = PcieLink::new(LinkParams::gen2_x8());
/// // Device DMA-writes 4 KiB of results into host memory:
/// let t = link.dma_write(SimTime::ZERO, 4096);
/// assert!(t.complete > t.start);
/// // Effective gen2 x8 bandwidth is 4 GB/s, so 4 KiB ≈ 1.1 us of wire time
/// // with header overhead; sanity-check the order of magnitude:
/// assert!(t.wire_end.as_nanos() > 1_000 && t.wire_end.as_nanos() < 2_000);
/// ```
#[derive(Debug, Clone)]
pub struct PcieLink {
    params: LinkParams,
    upstream: ServiceUnit,
    downstream: ServiceUnit,
    tracer: Tracer,
    span_parent: SpanId,
}

impl PcieLink {
    /// Creates an idle link with the given parameters.
    pub fn new(params: LinkParams) -> Self {
        PcieLink {
            params,
            upstream: ServiceUnit::new(),
            downstream: ServiceUnit::new(),
            tracer: Tracer::disabled(),
            span_parent: SpanId::NONE,
        }
    }

    /// Link parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Attaches a span tracer: DMA transfers emit `pcie`-layer spans under
    /// the parent set via [`set_span_parent`](Self::set_span_parent).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sets the span the next transfers report under (the device sets this
    /// to the in-flight request's device span).
    #[inline]
    pub fn set_span_parent(&mut self, parent: SpanId) {
        self.span_parent = parent;
    }

    /// Device writes `bytes` into host memory (posted, upstream direction).
    pub fn dma_write(&mut self, now: SimTime, bytes: u64) -> DmaTiming {
        let dur = self.params.wire_time(bytes);
        let svc = self.upstream.serve(now, dur);
        let timing = DmaTiming {
            start: svc.start,
            wire_end: svc.end,
            complete: svc.end + self.params.posted_latency,
        };
        if self.tracer.is_enabled() {
            self.trace_dma("dma_write", now, timing.complete, bytes, 1);
        }
        timing
    }

    /// Device reads `bytes` from host memory (non-posted): a small request
    /// TLP upstream, then completion TLPs with data downstream, plus the
    /// root-complex round trip.
    pub fn dma_read(&mut self, now: SimTime, bytes: u64) -> DmaTiming {
        // Request TLP occupies the upstream direction briefly.
        let req = self.upstream.serve(
            now,
            self.params.wire_time(0).min(SimDuration::from_nanos(100)),
        );
        // Completions with data occupy the downstream direction after the
        // request has reached the host and memory has responded.
        let data_ready = req.end + self.params.read_round_trip;
        let cpl = self
            .downstream
            .serve(data_ready, self.params.wire_time(bytes));
        let timing = DmaTiming {
            start: req.start,
            wire_end: cpl.end,
            complete: cpl.end,
        };
        if self.tracer.is_enabled() {
            self.trace_dma("dma_read", now, timing.complete, bytes, 1);
        }
        timing
    }

    /// Serves a run of equal-size DMA writes in arrival order: `times[j]`
    /// is the `j`-th issue time on entry and the initiator-observed
    /// completion time on return. Identical to one [`dma_write`] per
    /// element (the wire time is computed once for the run).
    ///
    /// [`dma_write`]: PcieLink::dma_write
    pub fn dma_write_run(&mut self, bytes_each: u64, times: &mut [SimTime]) {
        let issue = if self.tracer.is_enabled() {
            times.first().copied()
        } else {
            None
        };
        let dur = self.params.wire_time(bytes_each);
        self.upstream.serve_run(dur, times);
        for t in times.iter_mut() {
            *t += self.params.posted_latency;
        }
        if let (Some(start), Some(&end)) = (issue, times.last()) {
            self.trace_dma_run("dma_write", start, end, bytes_each, times.len() as u64);
        }
    }

    /// Serves a run of equal-size DMA reads in arrival order: `times[j]` is
    /// the `j`-th issue time on entry and the completion-observed time on
    /// return. Identical to one [`dma_read`] per element: all request TLPs
    /// are serialized upstream, then all completions downstream — the same
    /// interleaving a per-element loop produces, because the downstream
    /// timeline never feeds back into the upstream one.
    ///
    /// [`dma_read`]: PcieLink::dma_read
    pub fn dma_read_run(&mut self, bytes_each: u64, times: &mut [SimTime]) {
        let issue = if self.tracer.is_enabled() {
            times.first().copied()
        } else {
            None
        };
        let req_dur = self.params.wire_time(0).min(SimDuration::from_nanos(100));
        self.upstream.serve_run(req_dur, times);
        for t in times.iter_mut() {
            *t += self.params.read_round_trip;
        }
        self.downstream
            .serve_run(self.params.wire_time(bytes_each), times);
        if let (Some(start), Some(&end)) = (issue, times.last()) {
            self.trace_dma_run("dma_read", start, end, bytes_each, times.len() as u64);
        }
    }

    /// Span emission for one DMA (or coalesced descriptor fetch). Outlined
    /// and `#[cold]` so the tracing-disabled hot path pays only a branch.
    #[cold]
    fn trace_dma(&self, name: &'static str, start: SimTime, end: SimTime, bytes: u64, n: u64) {
        let id = self.tracer.span(self.span_parent, "pcie", name, start, end);
        self.tracer.attr(id, "bytes", bytes);
        if n > 1 {
            self.tracer.attr(id, "transfers", n);
        }
    }

    #[cold]
    fn trace_dma_run(
        &self,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        bytes_each: u64,
        transfers: u64,
    ) {
        let id = self.tracer.span(self.span_parent, "pcie", name, start, end);
        self.tracer.attr(id, "bytes", bytes_each * transfers);
        self.tracer.attr(id, "transfers", transfers);
    }

    /// Host CPU writes a small register on the device (posted MMIO write,
    /// e.g. ringing a doorbell). Returns when the write lands at the device.
    pub fn mmio_write(&mut self, now: SimTime) -> SimTime {
        let svc = self.downstream.serve(now, self.params.wire_time(4));
        svc.end + self.params.posted_latency
    }

    /// Host CPU reads a small device register (non-posted, stalls the CPU
    /// for a full round trip). Returns when the value is back at the CPU.
    pub fn mmio_read(&mut self, now: SimTime) -> SimTime {
        let req = self.downstream.serve(now, self.params.wire_time(0));
        let cpl = self.upstream.serve(
            req.end + self.params.read_round_trip,
            self.params.wire_time(4),
        );
        cpl.end
    }

    /// Time the upstream (device→host) direction has spent busy.
    pub fn upstream_busy(&self) -> SimDuration {
        self.upstream.busy_time()
    }

    /// Time the downstream (host→device) direction has spent busy.
    pub fn downstream_busy(&self) -> SimDuration {
        self.downstream.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen2_x8_bandwidth() {
        assert_eq!(LinkParams::gen2_x8().bandwidth(), 4_000_000_000);
    }

    #[test]
    fn tlp_segmentation() {
        let p = LinkParams::gen2_x8();
        assert_eq!(p.tlp_count(0), 1);
        assert_eq!(p.tlp_count(256), 1);
        assert_eq!(p.tlp_count(257), 2);
        assert_eq!(p.tlp_count(4096), 16);
    }

    #[test]
    fn wire_time_scales_with_size() {
        let p = LinkParams::gen2_x8();
        let t1 = p.wire_time(1024);
        let t4 = p.wire_time(4096);
        assert!(t4 > t1 * 3 && t4 < t1 * 5);
    }

    #[test]
    fn dma_read_slower_than_write() {
        let mut link = PcieLink::new(LinkParams::gen2_x8());
        let w = link.dma_write(SimTime::ZERO, 1024);
        let mut link2 = PcieLink::new(LinkParams::gen2_x8());
        let r = link2.dma_read(SimTime::ZERO, 1024);
        assert!(
            r.latency_since(SimTime::ZERO) > w.latency_since(SimTime::ZERO),
            "reads pay a round trip"
        );
    }

    #[test]
    fn directions_are_independent() {
        let mut link = PcieLink::new(LinkParams::gen2_x8());
        // Saturate upstream with a big DMA write...
        let w = link.dma_write(SimTime::ZERO, 1 << 20);
        // ...an MMIO write (downstream) is not delayed behind it.
        let mmio_done = link.mmio_write(SimTime::ZERO);
        assert!(mmio_done < w.wire_end);
    }

    #[test]
    fn back_to_back_writes_serialize() {
        let mut link = PcieLink::new(LinkParams::gen2_x8());
        let a = link.dma_write(SimTime::ZERO, 4096);
        let b = link.dma_write(SimTime::ZERO, 4096);
        assert_eq!(b.start, a.wire_end);
    }

    #[test]
    fn gen3_faster_than_gen2() {
        let mut g2 = PcieLink::new(LinkParams::gen2_x8());
        let mut g3 = PcieLink::new(LinkParams::gen3_x8());
        let t2 = g2.dma_write(SimTime::ZERO, 1 << 20);
        let t3 = g3.dma_write(SimTime::ZERO, 1 << 20);
        assert!(t3.wire_end < t2.wire_end);
    }

    #[test]
    fn busy_accounting_tracks_both_directions() {
        let mut link = PcieLink::new(LinkParams::gen2_x8());
        assert_eq!(link.upstream_busy(), SimDuration::ZERO);
        assert_eq!(link.downstream_busy(), SimDuration::ZERO);
        link.dma_write(SimTime::ZERO, 4096); // upstream
        let up = link.upstream_busy();
        assert!(up > SimDuration::ZERO);
        link.dma_read(SimTime::ZERO, 4096); // request up, data down
        assert!(link.downstream_busy() > SimDuration::ZERO);
        assert!(link.upstream_busy() > up, "read request occupies upstream");
    }

    #[test]
    fn saturated_link_throughput_matches_bandwidth() {
        // 100 x 64 KiB back-to-back writes: effective throughput within a
        // few percent of the 4 GB/s gen2 x8 budget (headers cost ~10%).
        let mut link = PcieLink::new(LinkParams::gen2_x8());
        let mut end = SimTime::ZERO;
        for _ in 0..100 {
            end = link.dma_write(end, 64 * 1024).wire_end;
        }
        let mbps = (100u64 * 64 * 1024) as f64 / 1e6 / end.as_secs_f64();
        assert!(
            (3000.0..4000.0).contains(&mbps),
            "throughput {mbps:.0} MB/s"
        );
    }

    #[test]
    fn mmio_read_round_trip_exceeds_write() {
        let mut link = PcieLink::new(LinkParams::gen2_x8());
        let w = link.mmio_write(SimTime::ZERO);
        let mut link2 = PcieLink::new(LinkParams::gen2_x8());
        let r = link2.mmio_read(SimTime::ZERO);
        assert!(r > w);
    }
}
