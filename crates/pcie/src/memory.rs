//! Host physical memory.
//!
//! NeSC's defining trick is that the vLBA→pLBA mapping tables (extent trees)
//! live in *host memory* and are traversed *by the device* over DMA (paper
//! §IV-B). To reproduce that faithfully, the model keeps an actual byte-
//! addressable host memory: the hypervisor serializes real extent-tree nodes
//! into it, and the device model reads them back during block walks. Data
//! transfers also move real bytes, which is what lets the test suite verify
//! isolation end to end (a VF can never observe bytes outside its file).
//!
//! The store is sparse (4 KiB pages allocated on first touch) so simulating
//! a machine with tens of gigabytes of address space costs only what is
//! actually touched. Unwritten memory reads as zeros, like freshly-zeroed
//! physical pages.

use std::collections::HashMap;
use std::fmt;

/// A host physical address (byte-granular).
pub type HostAddr = u64;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable host memory with a bump allocator for buffer and
/// table placement.
///
/// # Example
///
/// ```
/// use nesc_pcie::HostMemory;
/// let mut mem = HostMemory::new();
/// let buf = mem.alloc(8, 8);
/// mem.write_u64(buf, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u64(buf), 0xDEAD_BEEF);
/// // Untouched memory reads as zeros:
/// assert_eq!(mem.read_u64(buf + 4096), 0);
/// ```
pub struct HostMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    next_free: HostAddr,
}

impl fmt::Debug for HostMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostMemory")
            .field("resident_pages", &self.pages.len())
            .field("next_free", &self.next_free)
            .finish()
    }
}

impl Default for HostMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl HostMemory {
    /// Creates an empty memory. The allocator starts above the first page so
    /// address 0 (the traditional NULL) is never handed out.
    pub fn new() -> Self {
        HostMemory {
            pages: HashMap::new(),
            next_free: PAGE_SIZE as u64,
        }
    }

    /// Allocates `len` bytes aligned to `align`; returns the base address.
    ///
    /// This is a bump allocator — the model never frees, which is fine for
    /// the bounded experiments we run (and mirrors pinned DMA regions that
    /// live for the lifetime of a device).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> HostAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next_free + align - 1) & !(align - 1);
        self.next_free = base + len.max(1);
        base
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: HostAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Writes `data` starting at `addr`, allocating backing pages on demand.
    pub fn write(&mut self, addr: HostAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Fills `len` bytes at `addr` with `byte`.
    pub fn fill(&mut self, addr: HostAddr, len: u64, byte: u8) {
        // Chunked so a large fill does not materialize one huge buffer.
        let chunk = [byte; PAGE_SIZE];
        let mut remaining = len;
        let mut a = addr;
        while remaining > 0 {
            let n = remaining.min(PAGE_SIZE as u64) as usize;
            self.write(a, &chunk[..n]);
            a += n as u64;
            remaining -= n as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: HostAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: HostAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: HostAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: HostAddr, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Convenience: reads `len` bytes into a fresh vector.
    pub fn read_vec(&self, addr: HostAddr, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }

    /// Number of resident (touched) 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_fill_semantics() {
        let mem = HostMemory::new();
        let mut buf = [0xFFu8; 64];
        mem.read(0x1_0000, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn cross_page_write_read() {
        let mut mem = HostMemory::new();
        let addr = (PAGE_SIZE as u64) * 3 - 10; // straddles a page boundary
        let data: Vec<u8> = (0..40).collect();
        mem.write(addr, &data);
        assert_eq!(mem.read_vec(addr, 40), data);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut mem = HostMemory::new();
        let a = mem.alloc(10, 1);
        let b = mem.alloc(100, 4096);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 10);
        // NULL is never allocated.
        assert_ne!(a, 0);
    }

    #[test]
    fn scalar_accessors() {
        let mut mem = HostMemory::new();
        mem.write_u32(0x2000, 0xA1B2_C3D4);
        assert_eq!(mem.read_u32(0x2000), 0xA1B2_C3D4);
        mem.write_u64(0x2008, u64::MAX);
        assert_eq!(mem.read_u64(0x2008), u64::MAX);
    }

    #[test]
    fn fill_large_region() {
        let mut mem = HostMemory::new();
        mem.fill(0x3000, 3 * PAGE_SIZE as u64 + 17, 0xAB);
        let v = mem.read_vec(0x3000, 3 * PAGE_SIZE + 17);
        assert!(v.iter().all(|&b| b == 0xAB));
        // One byte past the fill is still zero.
        assert_eq!(mem.read_vec(0x3000 + 3 * PAGE_SIZE as u64 + 17, 1)[0], 0);
    }

    proptest! {
        /// What you write is what you read, at arbitrary (mis)alignments.
        #[test]
        fn prop_write_read_roundtrip(
            addr in 0u64..1_000_000,
            data in proptest::collection::vec(any::<u8>(), 1..5000)
        ) {
            let mut mem = HostMemory::new();
            mem.write(addr, &data);
            prop_assert_eq!(mem.read_vec(addr, data.len()), data);
        }

        /// Non-overlapping writes do not disturb each other.
        #[test]
        fn prop_disjoint_writes_independent(
            a_len in 1usize..2000,
            gap in 0u64..100,
            b_len in 1usize..2000,
        ) {
            let mut mem = HostMemory::new();
            let a_addr = 0x8000u64;
            let b_addr = a_addr + a_len as u64 + gap;
            let a_data = vec![0x11u8; a_len];
            let b_data = vec![0x22u8; b_len];
            mem.write(a_addr, &a_data);
            mem.write(b_addr, &b_data);
            prop_assert_eq!(mem.read_vec(a_addr, a_len), a_data);
            prop_assert_eq!(mem.read_vec(b_addr, b_len), b_data);
        }
    }
}
