//! Host physical memory.
//!
//! NeSC's defining trick is that the vLBA→pLBA mapping tables (extent trees)
//! live in *host memory* and are traversed *by the device* over DMA (paper
//! §IV-B). To reproduce that faithfully, the model keeps an actual byte-
//! addressable host memory: the hypervisor serializes real extent-tree nodes
//! into it, and the device model reads them back during block walks. Data
//! transfers also move real bytes, which is what lets the test suite verify
//! isolation end to end (a VF can never observe bytes outside its file).
//!
//! The store is sparse (4 KiB pages allocated on first touch) so simulating
//! a machine with tens of gigabytes of address space costs only what is
//! actually touched. Unwritten memory reads as zeros, like freshly-zeroed
//! physical pages.

use std::collections::HashMap;
use std::fmt;

use nesc_sim::IntHashBuilder;

/// A host physical address (byte-granular).
pub type HostAddr = u64;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable host memory with a bump allocator for buffer and
/// table placement.
///
/// # Example
///
/// ```
/// use nesc_pcie::HostMemory;
/// let mut mem = HostMemory::new();
/// let buf = mem.alloc(8, 8);
/// mem.write_u64(buf, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u64(buf), 0xDEAD_BEEF);
/// // Untouched memory reads as zeros:
/// assert_eq!(mem.read_u64(buf + 4096), 0);
/// ```
pub struct HostMemory {
    // Keyed by page number with a cheap deterministic integer hasher: the
    // data path pays one lookup per page moved, and SipHash would dominate
    // the batched transfer loop.
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, IntHashBuilder>,
    next_free: HostAddr,
}

impl fmt::Debug for HostMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostMemory")
            .field("resident_pages", &self.pages.len())
            .field("next_free", &self.next_free)
            .finish()
    }
}

impl Default for HostMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl HostMemory {
    /// Creates an empty memory. The allocator starts above the first page so
    /// address 0 (the traditional NULL) is never handed out.
    pub fn new() -> Self {
        HostMemory {
            pages: HashMap::default(),
            next_free: PAGE_SIZE as u64,
        }
    }

    /// Allocates `len` bytes aligned to `align`; returns the base address.
    ///
    /// This is a bump allocator — the model never frees, which is fine for
    /// the bounded experiments we run (and mirrors pinned DMA regions that
    /// live for the lifetime of a device).
    ///
    /// A non-power-of-two alignment (a contract violation) is rounded up
    /// to the next power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> HostAddr {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align.max(1).next_power_of_two();
        let base = (self.next_free + align - 1) & !(align - 1);
        self.next_free = base + len.max(1);
        base
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: HostAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Writes `data` starting at `addr`, allocating backing pages on demand.
    pub fn write(&mut self, addr: HostAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Writes `len` bytes starting at `addr` by handing the caller each
    /// page-bounded destination chunk in address order: `f(offset, chunk)`
    /// receives the chunk's byte offset within the transfer and a mutable
    /// slice of the (allocated-on-demand) backing page. This is the no-copy
    /// sibling of [`write`](HostMemory::write) — a DMA source can render
    /// straight into the pages instead of staging a contiguous buffer. The
    /// caller must fill every byte of every chunk, exactly as a
    /// [`write`](HostMemory::write) of `len` bytes would.
    pub fn write_with(&mut self, addr: HostAddr, len: usize, mut f: impl FnMut(usize, &mut [u8])) {
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(len - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            f(off, &mut p[in_page..in_page + n]);
            off += n;
        }
    }

    /// Fills `len` bytes at `addr` with zeros *without* materializing
    /// backing pages: chunks on pages that have never been written already
    /// read as zeros and are left unallocated — the sparse-store
    /// equivalent of punching a hole, and the reason zero-dominated
    /// transfers (POSIX hole reads, freshly-trimmed ranges) cost no page
    /// allocation and no memset on untouched destinations. Present pages
    /// are zeroed in place. Observationally identical to
    /// `fill(addr, len, 0)` for every subsequent read.
    pub fn fill_zero(&mut self, addr: HostAddr, len: u64) {
        let mut off = 0u64;
        while off < len {
            let a = addr + off;
            let page = a >> PAGE_SHIFT;
            let in_page = (a as usize) & (PAGE_SIZE - 1);
            let n = ((PAGE_SIZE - in_page) as u64).min(len - off);
            if let Some(p) = self.pages.get_mut(&page) {
                p[in_page..in_page + n as usize].fill(0);
            }
            off += n;
        }
    }

    /// Fills `len` bytes at `addr` with `byte`.
    pub fn fill(&mut self, addr: HostAddr, len: u64, byte: u8) {
        // Chunked so a large fill does not materialize one huge buffer.
        let chunk = [byte; PAGE_SIZE];
        let mut remaining = len;
        let mut a = addr;
        while remaining > 0 {
            let n = remaining.min(PAGE_SIZE as u64) as usize;
            self.write(a, &chunk[..n]);
            a += n as u64;
            remaining -= n as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: HostAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: HostAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: HostAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: HostAddr, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Convenience: reads `len` bytes into a fresh vector.
    pub fn read_vec(&self, addr: HostAddr, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }

    /// Number of resident (touched) 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_fill_semantics() {
        let mem = HostMemory::new();
        let mut buf = [0xFFu8; 64];
        mem.read(0x1_0000, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn cross_page_write_read() {
        let mut mem = HostMemory::new();
        let addr = (PAGE_SIZE as u64) * 3 - 10; // straddles a page boundary
        let data: Vec<u8> = (0..40).collect();
        mem.write(addr, &data);
        assert_eq!(mem.read_vec(addr, 40), data);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut mem = HostMemory::new();
        let a = mem.alloc(10, 1);
        let b = mem.alloc(100, 4096);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 10);
        // NULL is never allocated.
        assert_ne!(a, 0);
    }

    #[test]
    fn scalar_accessors() {
        let mut mem = HostMemory::new();
        mem.write_u32(0x2000, 0xA1B2_C3D4);
        assert_eq!(mem.read_u32(0x2000), 0xA1B2_C3D4);
        mem.write_u64(0x2008, u64::MAX);
        assert_eq!(mem.read_u64(0x2008), u64::MAX);
    }

    #[test]
    fn write_with_renders_into_pages() {
        let mut mem = HostMemory::new();
        let addr = (PAGE_SIZE as u64) * 2 - 100; // straddles a boundary
        mem.write_with(addr, 300, |off, chunk| {
            for (i, b) in chunk.iter_mut().enumerate() {
                *b = (off + i) as u8;
            }
        });
        let got = mem.read_vec(addr, 300);
        let want: Vec<u8> = (0..300usize).map(|i| i as u8).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fill_zero_skips_untouched_pages() {
        let mut mem = HostMemory::new();
        let base = (PAGE_SIZE as u64) * 8;
        // Zeroing virgin memory allocates nothing...
        mem.fill_zero(base, 3 * PAGE_SIZE as u64);
        assert_eq!(mem.resident_pages(), 0);
        // ...but still reads as zeros.
        assert!(mem.read_vec(base, PAGE_SIZE).iter().all(|&b| b == 0));
        // A present page really is scrubbed, including partial spans.
        mem.write(base, &[0xEEu8; 64]);
        mem.fill_zero(base + 8, 16);
        let got = mem.read_vec(base, 64);
        assert!(got[..8].iter().all(|&b| b == 0xEE));
        assert!(got[8..24].iter().all(|&b| b == 0));
        assert!(got[24..].iter().all(|&b| b == 0xEE));
    }

    #[test]
    fn fill_large_region() {
        let mut mem = HostMemory::new();
        mem.fill(0x3000, 3 * PAGE_SIZE as u64 + 17, 0xAB);
        let v = mem.read_vec(0x3000, 3 * PAGE_SIZE + 17);
        assert!(v.iter().all(|&b| b == 0xAB));
        // One byte past the fill is still zero.
        assert_eq!(mem.read_vec(0x3000 + 3 * PAGE_SIZE as u64 + 17, 1)[0], 0);
    }

    proptest! {
        /// What you write is what you read, at arbitrary (mis)alignments.
        #[test]
        fn prop_write_read_roundtrip(
            addr in 0u64..1_000_000,
            data in proptest::collection::vec(any::<u8>(), 1..5000)
        ) {
            let mut mem = HostMemory::new();
            mem.write(addr, &data);
            prop_assert_eq!(mem.read_vec(addr, data.len()), data);
        }

        /// Non-overlapping writes do not disturb each other.
        #[test]
        fn prop_disjoint_writes_independent(
            a_len in 1usize..2000,
            gap in 0u64..100,
            b_len in 1usize..2000,
        ) {
            let mut mem = HostMemory::new();
            let a_addr = 0x8000u64;
            let b_addr = a_addr + a_len as u64 + gap;
            let a_data = vec![0x11u8; a_len];
            let b_data = vec![0x22u8; b_len];
            mem.write(a_addr, &a_data);
            mem.write(b_addr, &b_data);
            prop_assert_eq!(mem.read_vec(a_addr, a_len), a_data);
            prop_assert_eq!(mem.read_vec(b_addr, b_len), b_data);
        }
    }
}
