//! PCIe `bus:device.function` addressing.
//!
//! Every entity on the interconnect is identified by a BDF triplet (paper
//! §V): 8-bit bus, 5-bit device, 3-bit function, packed into a 16-bit
//! *routing ID*. SR-IOV virtual functions do not get their own config-space
//! headers typed in by the OS; their routing IDs are computed from the
//! physical function's routing ID plus the capability's `first_vf_offset`
//! and `vf_stride`.
//!
//! The paper leans on the fact that "the BDF triplet is originated by the
//! PCIe interface and is unforgeable by a virtual machine" — in this model,
//! requests carry their `Bdf` as assigned by the interconnect, never chosen
//! by the client.

use std::fmt;

/// A PCIe `bus:device.function` address.
///
/// # Example
///
/// ```
/// use nesc_pcie::Bdf;
/// let pf = Bdf::new(0x03, 0x00, 0);
/// assert_eq!(pf.to_string(), "03:00.0");
/// assert_eq!(pf.routing_id(), 0x0300);
/// // SR-IOV: first VF at offset 1, stride 1:
/// let vf0 = pf.offset_by(1);
/// assert_eq!(vf0.to_string(), "03:00.1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bdf(u16);

impl Bdf {
    /// Constructs an address from its components.
    ///
    /// # Panics
    ///
    /// Panics if `device >= 32` or `function >= 8`.
    pub fn new(bus: u8, device: u8, function: u8) -> Self {
        assert!(device < 32, "PCIe device number must be < 32");
        assert!(function < 8, "PCIe function number must be < 8");
        Bdf(((bus as u16) << 8) | ((device as u16) << 3) | function as u16)
    }

    /// Reconstructs an address from a 16-bit routing ID.
    pub const fn from_routing_id(id: u16) -> Self {
        Bdf(id)
    }

    /// The 16-bit routing ID (`bus << 8 | device << 3 | function`).
    pub const fn routing_id(self) -> u16 {
        self.0
    }

    /// Bus number.
    pub const fn bus(self) -> u8 {
        (self.0 >> 8) as u8
    }

    /// Device number (0–31).
    pub const fn device(self) -> u8 {
        ((self.0 >> 3) & 0x1F) as u8
    }

    /// Function number (0–7).
    pub const fn function(self) -> u8 {
        (self.0 & 0x7) as u8
    }

    /// Routing ID arithmetic used by SR-IOV: this address plus `offset`
    /// routing-ID steps. VF *n* of a PF is
    /// `pf.offset_by(first_vf_offset + n * vf_stride)`. Overflowing the
    /// 16-bit routing-ID space (a contract violation: the SR-IOV
    /// capability bounds VF counts well below it) saturates at the last
    /// routing ID.
    pub fn offset_by(self, offset: u16) -> Bdf {
        debug_assert!(
            self.0.checked_add(offset).is_some(),
            "SR-IOV routing id overflow"
        );
        Bdf(self.0.saturating_add(offset))
    }
}

impl fmt::Display for Bdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}.{}",
            self.bus(),
            self.device(),
            self.function()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn components_roundtrip() {
        let bdf = Bdf::new(0xAB, 0x1F, 7);
        assert_eq!(bdf.bus(), 0xAB);
        assert_eq!(bdf.device(), 0x1F);
        assert_eq!(bdf.function(), 7);
        assert_eq!(Bdf::from_routing_id(bdf.routing_id()), bdf);
    }

    #[test]
    fn display_format() {
        assert_eq!(Bdf::new(0, 2, 3).to_string(), "00:02.3");
    }

    #[test]
    #[should_panic(expected = "device number")]
    fn rejects_bad_device() {
        Bdf::new(0, 32, 0);
    }

    #[test]
    #[should_panic(expected = "function number")]
    fn rejects_bad_function() {
        Bdf::new(0, 0, 8);
    }

    #[test]
    fn vf_addresses_cross_function_boundary() {
        // A PF at 03:00.0 with 64 VFs, offset 1, stride 1 spills into higher
        // device numbers — exactly how real SR-IOV devices appear.
        let pf = Bdf::new(3, 0, 0);
        let vf7 = pf.offset_by(1 + 7);
        assert_eq!(vf7.to_string(), "03:01.0");
        let vf63 = pf.offset_by(1 + 63);
        assert_eq!(vf63.to_string(), "03:08.0");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(bus in 0u8..=255, dev in 0u8..32, func in 0u8..8) {
            let b = Bdf::new(bus, dev, func);
            prop_assert_eq!(b.bus(), bus);
            prop_assert_eq!(b.device(), dev);
            prop_assert_eq!(b.function(), func);
        }

        #[test]
        fn prop_offsets_distinct(off1 in 0u16..256, off2 in 0u16..256) {
            let pf = Bdf::new(1, 0, 0);
            if off1 != off2 {
                prop_assert_ne!(pf.offset_by(off1), pf.offset_by(off2));
            }
        }
    }
}
