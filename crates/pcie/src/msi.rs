//! Message-signalled interrupts.
//!
//! NeSC interrupts the hypervisor when a VF write misses in its extent tree
//! (so the host can allocate blocks and rebuild the mapping) and interrupts
//! guests on request completion. An MSI is just a tagged memory write; the
//! model represents it as an identity `(source function, vector)` that the
//! system glue delivers as an event after the link's posted-write latency.

use crate::addr::Bdf;

/// Identity of a message-signalled interrupt.
///
/// # Example
///
/// ```
/// use nesc_pcie::{MsiVector, Bdf};
/// let v = MsiVector::new(Bdf::new(3, 0, 1), 0);
/// assert_eq!(v.to_string(), "msi(03:00.1/0)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsiVector {
    source: Bdf,
    vector: u16,
}

impl MsiVector {
    /// Creates a vector identity for interrupts raised by `source`.
    pub fn new(source: Bdf, vector: u16) -> Self {
        MsiVector { source, vector }
    }

    /// The function that raises this interrupt.
    pub fn source(&self) -> Bdf {
        self.source
    }

    /// The vector number within the source's MSI table.
    pub fn vector(&self) -> u16 {
        self.vector
    }
}

impl std::fmt::Display for MsiVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msi({}/{})", self.source, self.vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_semantics() {
        let a = MsiVector::new(Bdf::new(1, 0, 0), 3);
        let b = MsiVector::new(Bdf::new(1, 0, 0), 3);
        let c = MsiVector::new(Bdf::new(1, 0, 1), 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.vector(), 3);
        assert_eq!(a.source(), Bdf::new(1, 0, 0));
    }
}
