//! SysBench File I/O: "a sequence of random file operations" (Table II).
//!
//! Mirrors `sysbench fileio` with its `--file-test-mode`s: a set of
//! pre-created files is hit with sequential or random reads/writes
//! through the guest filesystem. The paper's Table II row is the default
//! `rndrw` mix; the other modes exist because real sysbench runs sweep
//! them and they exercise different filesystem paths (append vs in-place,
//! readahead-friendly vs not).
//!
//! The [`Workload::run`] implementation covers both sysbench phases:
//! `prepare` (file-set creation) then the random-op run.

use nesc_fs::Ino;
use nesc_hypervisor::{GuestFilesystem, System, TenantIo, Workload};
use nesc_sim::{SimDuration, SimRng};

use crate::report::WorkloadReport;

/// `sysbench fileio --file-test-mode=...`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FileTestMode {
    /// Sequential write (`seqwr`).
    SeqWr,
    /// Sequential read (`seqrd`).
    SeqRd,
    /// Random read (`rndrd`).
    RndRd,
    /// Random write (`rndwr`).
    RndWr,
    /// Random mixed read/write (`rndrw`, the default and the paper's row).
    #[default]
    RndRw,
}

impl FileTestMode {
    fn label(self) -> &'static str {
        match self {
            FileTestMode::SeqWr => "seqwr",
            FileTestMode::SeqRd => "seqrd",
            FileTestMode::RndRd => "rndrd",
            FileTestMode::RndWr => "rndwr",
            FileTestMode::RndRw => "rndrw",
        }
    }
}

/// A SysBench-fileio-style run.
#[derive(Debug, Clone, Copy)]
pub struct FileIo {
    /// Number of files in the working set.
    pub files: u32,
    /// Size of each file in bytes.
    pub file_bytes: u64,
    /// I/O unit (sysbench default 16 KiB).
    pub io_bytes: u64,
    /// Total operations to perform.
    pub ops: u64,
    /// Fraction of operations that are reads (sysbench rndrw default 1.5
    /// reads per write ⇒ 0.6).
    pub read_ratio: f64,
    /// Benchmark-driver CPU per operation.
    pub compute_per_op: SimDuration,
    /// The file-test-mode.
    pub mode: FileTestMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FileIo {
    fn default() -> Self {
        FileIo {
            files: 16,
            file_bytes: 1 << 20,
            io_bytes: 16 * 1024,
            ops: 400,
            read_ratio: 0.6,
            compute_per_op: SimDuration::from_micros(50),
            mode: FileTestMode::RndRw,
            seed: 0x5EED_F11E,
        }
    }
}

impl FileIo {
    /// Prepares the file set (sysbench's `prepare` phase). Untimed cost is
    /// irrelevant; the data writes do advance the clock like a real
    /// prepare phase would.
    fn prepare(&self, system: &mut System, gfs: &mut GuestFilesystem) -> Vec<Ino> {
        let chunk = vec![0x51u8; 64 * 1024];
        (0..self.files)
            .map(|i| {
                let ino = gfs
                    .create(system, &format!("sysbench_file_{i}"))
                    .expect("fresh namespace");
                let mut off = 0;
                while off < self.file_bytes {
                    let n = chunk.len().min((self.file_bytes - off) as usize);
                    gfs.write(system, ino, off, &chunk[..n]).expect("space");
                    off += n as u64;
                }
                ino
            })
            .collect()
    }

    /// Runs the random-op phase over prepared files.
    ///
    /// # Panics
    ///
    /// Panics if `files` or `ops` is zero.
    fn run_prepared(
        &self,
        system: &mut System,
        gfs: &mut GuestFilesystem,
        inos: &[Ino],
    ) -> WorkloadReport {
        assert!(!inos.is_empty() && self.ops > 0, "empty fileio run");
        let mut rng = SimRng::seed(self.seed);
        let mut report = WorkloadReport::new(Workload::name(self));
        let start = system.now();
        let payload = vec![0xF1u8; self.io_bytes as usize];
        let max_off = self.file_bytes.saturating_sub(self.io_bytes).max(1);
        let ops_per_file = (self.file_bytes / self.io_bytes).max(1);
        for op_idx in 0..self.ops {
            let t0 = system.now();
            system.charge_vcpu(gfs.vm(), self.compute_per_op);
            let (ino, offset, is_read) = match self.mode {
                FileTestMode::SeqWr | FileTestMode::SeqRd => {
                    // Sequential sweep through the file set, like
                    // sysbench's sequential modes.
                    let ino = inos[(op_idx / ops_per_file) as usize % inos.len()];
                    let offset = (op_idx % ops_per_file) * self.io_bytes;
                    (ino, offset, self.mode == FileTestMode::SeqRd)
                }
                FileTestMode::RndRd | FileTestMode::RndWr | FileTestMode::RndRw => {
                    let ino = inos[rng.range(0, inos.len() as u64) as usize];
                    // sysbench aligns offsets to the I/O unit.
                    let offset = (rng.range(0, max_off) / self.io_bytes) * self.io_bytes;
                    let is_read = match self.mode {
                        FileTestMode::RndRd => true,
                        FileTestMode::RndWr => false,
                        _ => rng.chance(self.read_ratio),
                    };
                    (ino, offset, is_read)
                }
            };
            if is_read {
                let (data, _) = gfs
                    .read(system, ino, offset, self.io_bytes as usize)
                    .expect("file exists");
                debug_assert!(!data.is_empty());
            } else {
                gfs.write(system, ino, offset, &payload).expect("space");
            }
            report.record(self.io_bytes, system.now() - t0);
        }
        report.elapsed = system.now() - start;
        report
    }
}

impl Workload for FileIo {
    fn name(&self) -> String {
        format!("sysbench-fileio {}", self.mode.label())
    }

    fn run(&self, io: &mut TenantIo<'_>) -> WorkloadReport {
        let (system, gfs) = io.fs();
        let inos = self.prepare(system, gfs);
        self.run_prepared(system, gfs, &inos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_core::NescConfig;
    use nesc_hypervisor::{DiskKind, SoftwareCosts};

    fn quick(kind: DiskKind) -> WorkloadReport {
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 128 * 1024;
        let mut sys = System::new(cfg, SoftwareCosts::calibrated());
        let wl = FileIo {
            files: 4,
            file_bytes: 256 * 1024,
            io_bytes: 16 * 1024,
            ops: 60,
            ..Default::default()
        };
        wl.run(&mut TenantIo::provision(
            &mut sys,
            kind,
            "fio.img",
            64 << 20,
        ))
    }

    #[test]
    fn completes_requested_ops() {
        let rep = quick(DiskKind::NescDirect);
        assert_eq!(rep.ops, 60);
        assert_eq!(rep.bytes, 60 * 16 * 1024);
        assert!(rep.ops_per_sec() > 0.0);
    }

    #[test]
    fn direct_beats_virtio() {
        let d = quick(DiskKind::NescDirect);
        let v = quick(DiskKind::Virtio);
        assert!(
            d.ops_per_sec() > v.ops_per_sec() * 1.3,
            "direct {:.0} vs virtio {:.0} ops/s",
            d.ops_per_sec(),
            v.ops_per_sec()
        );
    }

    #[test]
    fn every_mode_runs_and_sequential_read_is_fastest() {
        let run_mode = |mode: FileTestMode| {
            let mut cfg = NescConfig::prototype();
            cfg.capacity_blocks = 128 * 1024;
            let mut sys = System::new(cfg, SoftwareCosts::calibrated());
            let wl = FileIo {
                files: 4,
                file_bytes: 256 * 1024,
                io_bytes: 16 * 1024,
                ops: 48,
                mode,
                ..Default::default()
            };
            wl.run(&mut TenantIo::provision(
                &mut sys,
                DiskKind::NescDirect,
                "m.img",
                64 << 20,
            ))
        };
        let seqrd = run_mode(FileTestMode::SeqRd);
        let rndrd = run_mode(FileTestMode::RndRd);
        let seqwr = run_mode(FileTestMode::SeqWr);
        let rndwr = run_mode(FileTestMode::RndWr);
        for r in [&seqrd, &rndrd, &seqwr, &rndwr] {
            assert_eq!(r.ops, 48);
        }
        assert!(seqrd.summary().contains("seqrd"));
        // Sequential reads ride one extent (BTLB-friendly); random reads
        // pay more walks — both still complete with sane throughput.
        assert!(seqrd.ops_per_sec() >= rndrd.ops_per_sec() * 0.9);
        assert!(seqwr.ops_per_sec() > 0.0 && rndwr.ops_per_sec() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(DiskKind::NescDirect);
        let b = quick(DiskKind::NescDirect);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.bytes, b.bytes);
    }
}
