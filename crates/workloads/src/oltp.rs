//! SysBench OLTP over a MySQL-style storage engine (Table II).
//!
//! A compact InnoDB-flavoured substrate: a table of fixed-size rows packed
//! into 16 KiB pages stored in a table file, a buffer pool with LRU
//! eviction (dirty pages written back on eviction), and a write-ahead log
//! file whose commit records are flushed at transaction commit
//! (`innodb_flush_log_at_trx_commit=1`). SysBench's OLTP mix drives it:
//! each transaction is `point_selects` reads of Zipf-popular rows plus
//! `updates` row updates, ending in a commit flush.

use std::collections::VecDeque;

use nesc_fs::Ino;
use nesc_hypervisor::{GuestFilesystem, System, TenantIo, Workload};
use nesc_sim::{rng::Zipf, SimDuration, SimRng};

use crate::report::WorkloadReport;

/// Database page size (InnoDB default 16 KiB).
const PAGE_BYTES: u64 = 16 * 1024;
/// Row size (sysbench's ~200-byte rows, padded).
const ROW_BYTES: u64 = 256;
/// Rows per page.
const ROWS_PER_PAGE: u64 = PAGE_BYTES / ROW_BYTES;

/// A SysBench-OLTP-style run.
#[derive(Debug, Clone, Copy)]
pub struct Oltp {
    /// Rows in the table.
    pub rows: u64,
    /// Transactions to execute.
    pub transactions: u64,
    /// Point selects per transaction (sysbench default 10).
    pub point_selects: u32,
    /// Updates per transaction (sysbench default 2 index + 1 non-index).
    pub updates: u32,
    /// Buffer-pool capacity in pages (128 MB guest RAM leaves a small
    /// pool, per Table I's 128 MB guests).
    pub buffer_pool_pages: usize,
    /// Zipf skew of row popularity.
    pub zipf_theta: f64,
    /// Query-processing CPU per transaction (parser, optimizer, executor —
    /// MySQL work that is not I/O).
    pub compute_per_tx: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Oltp {
    fn default() -> Self {
        Oltp {
            rows: 40_000,
            transactions: 100,
            point_selects: 10,
            updates: 3,
            buffer_pool_pages: 256,
            zipf_theta: 0.9,
            compute_per_tx: SimDuration::from_micros(400),
            seed: 0x014B_D00D,
        }
    }
}

/// The engine's runtime state over the guest filesystem.
struct Engine {
    table: Ino,
    log: Ino,
    log_tail: u64,
    /// LRU of resident pages: front = oldest. (page_id, dirty)
    pool: VecDeque<(u64, bool)>,
    capacity: usize,
    page_hits: u64,
    page_misses: u64,
}

impl Engine {
    fn touch(&mut self, page: u64, dirty: bool) -> bool {
        if let Some(pos) = self.pool.iter().position(|&(p, _)| p == page) {
            let (_, was_dirty) = self.pool.remove(pos).expect("position valid");
            self.pool.push_back((page, dirty || was_dirty));
            self.page_hits += 1;
            true
        } else {
            self.page_misses += 1;
            false
        }
    }

    /// Inserts a page, returning an evicted dirty page if any.
    fn insert(&mut self, page: u64, dirty: bool) -> Option<u64> {
        let mut writeback = None;
        if self.pool.len() >= self.capacity {
            if let Some((victim, was_dirty)) = self.pool.pop_front() {
                if was_dirty {
                    writeback = Some(victim);
                }
            }
        }
        self.pool.push_back((page, dirty));
        writeback
    }
}

impl Oltp {
    /// Creates the table and log files and bulk-loads the table
    /// (sysbench `prepare`).
    fn prepare(&self, system: &mut System, gfs: &mut GuestFilesystem) -> (Ino, Ino) {
        let table = gfs.create(system, "ibdata_table").expect("fresh fs");
        let log = gfs.create(system, "ib_logfile0").expect("fresh fs");
        let pages = self.rows.div_ceil(ROWS_PER_PAGE);
        let chunk = vec![0xDBu8; PAGE_BYTES as usize];
        for p in 0..pages {
            gfs.write(system, table, p * PAGE_BYTES, &chunk)
                .expect("space for table");
        }
        (table, log)
    }

    /// Runs the transaction mix (sysbench `run`).
    ///
    /// # Panics
    ///
    /// Panics on a zero-transaction configuration.
    fn run_prepared(
        &self,
        system: &mut System,
        gfs: &mut GuestFilesystem,
        table: Ino,
        log: Ino,
    ) -> WorkloadReport {
        assert!(self.transactions > 0 && self.rows > 0, "empty OLTP run");
        let mut rng = SimRng::seed(self.seed);
        let zipf = Zipf::new(self.rows, self.zipf_theta);
        let mut engine = Engine {
            table,
            log,
            log_tail: 0,
            pool: VecDeque::new(),
            capacity: self.buffer_pool_pages,
            page_hits: 0,
            page_misses: 0,
        };
        let mut report = WorkloadReport::new("sysbench-oltp");
        let start = system.now();
        let row_buf_len = ROW_BYTES as usize;
        for _ in 0..self.transactions {
            let t0 = system.now();
            let mut bytes = 0u64;
            // Query processing CPU (SQL parse/plan/execute).
            system.charge_vcpu(gfs.vm(), self.compute_per_tx);
            // Point selects.
            for _ in 0..self.point_selects {
                let row = zipf.sample(&mut rng);
                let page = row / ROWS_PER_PAGE;
                if !engine.touch(page, false) {
                    let (data, _) = gfs
                        .read(system, engine.table, page * PAGE_BYTES, PAGE_BYTES as usize)
                        .expect("table page");
                    bytes += data.len() as u64;
                    if let Some(victim) = engine.insert(page, false) {
                        let dirty = vec![0xDCu8; PAGE_BYTES as usize];
                        gfs.write(system, engine.table, victim * PAGE_BYTES, &dirty)
                            .expect("writeback");
                        bytes += PAGE_BYTES;
                    }
                }
                bytes += row_buf_len as u64;
            }
            // Updates: page dirtying + redo log records.
            for _ in 0..self.updates {
                let row = zipf.sample(&mut rng);
                let page = row / ROWS_PER_PAGE;
                if !engine.touch(page, true) {
                    let (data, _) = gfs
                        .read(system, engine.table, page * PAGE_BYTES, PAGE_BYTES as usize)
                        .expect("table page");
                    bytes += data.len() as u64;
                    if let Some(victim) = engine.insert(page, true) {
                        let dirty = vec![0xDCu8; PAGE_BYTES as usize];
                        gfs.write(system, engine.table, victim * PAGE_BYTES, &dirty)
                            .expect("writeback");
                        bytes += PAGE_BYTES;
                    }
                }
            }
            // Commit: flush a redo-log record (512 B rounded by the FS).
            let record = vec![0x1Au8; 512];
            gfs.write(system, engine.log, engine.log_tail, &record)
                .expect("log space");
            engine.log_tail += record.len() as u64;
            bytes += record.len() as u64;
            report.record(bytes, system.now() - t0);
        }
        report.elapsed = system.now() - start;
        report
    }
}

impl Workload for Oltp {
    fn name(&self) -> String {
        "sysbench-oltp".to_string()
    }

    fn run(&self, io: &mut TenantIo<'_>) -> WorkloadReport {
        let (system, gfs) = io.fs();
        let (table, log) = self.prepare(system, gfs);
        self.run_prepared(system, gfs, table, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_core::NescConfig;
    use nesc_hypervisor::{DiskKind, SoftwareCosts};

    fn quick(kind: DiskKind) -> WorkloadReport {
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 128 * 1024;
        let mut sys = System::new(cfg, SoftwareCosts::calibrated());
        Oltp {
            rows: 4_000,
            transactions: 30,
            buffer_pool_pages: 16,
            ..Default::default()
        }
        .run(&mut TenantIo::provision(&mut sys, kind, "db.img", 64 << 20))
    }

    #[test]
    fn completes_transactions() {
        let rep = quick(DiskKind::NescDirect);
        assert_eq!(rep.ops, 30);
        assert!(rep.ops_per_sec() > 0.0);
        assert!(rep.bytes > 0);
    }

    #[test]
    fn direct_beats_virtio() {
        let d = quick(DiskKind::NescDirect);
        let v = quick(DiskKind::Virtio);
        assert!(
            d.ops_per_sec() > v.ops_per_sec(),
            "direct {:.0} vs virtio {:.0} tx/s",
            d.ops_per_sec(),
            v.ops_per_sec()
        );
    }

    #[test]
    fn deterministic() {
        let a = quick(DiskKind::NescDirect);
        let b = quick(DiskKind::NescDirect);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn buffer_pool_reduces_io() {
        // A bigger pool must not increase device reads.
        let run_with_pool = |pages: usize| {
            let mut cfg = NescConfig::prototype();
            cfg.capacity_blocks = 128 * 1024;
            let mut sys = System::new(cfg, SoftwareCosts::calibrated());
            Oltp {
                rows: 4_000,
                transactions: 30,
                buffer_pool_pages: pages,
                ..Default::default()
            }
            .run(&mut TenantIo::provision(
                &mut sys,
                DiskKind::NescDirect,
                "bp.img",
                64 << 20,
            ));
            sys.device().stats().blocks_read
        };
        assert!(run_with_pool(64) <= run_with_pool(2));
    }
}
