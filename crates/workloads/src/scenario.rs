//! Datacenter-scale tenancy: the scenario engine.
//!
//! A [`ScenarioSpec`] declares tenant populations (class, count, traffic
//! shape, working-set skew, SLO); [`Scenario`] compiles that declaration
//! into a single deterministic run:
//!
//! 1. **Provision** — one system sized for the whole fleet (sparse
//!    backing makes a thousand 1 MiB disks free until written), one VM +
//!    VF + preallocated image per tenant, per-tenant QoS priority, and
//!    one SLO watchdog rule per tenant that declared a p99 bound.
//! 2. **Generate** — every tenant gets a private RNG lane forked from
//!    the scenario seed, a [`BurstyArrivals`] inter-arrival process
//!    matching its class, and a [`ZipfLike`] working-set sampler over its
//!    own disk. The per-tenant tapes are merged into one time-sorted
//!    open-loop arrival tape.
//! 3. **Replay** — [`System::run_open_loop`] issues the tape; completions
//!    fold into per-tenant latency histograms and a [`RunDigest`] so two
//!    runs of the same spec can be diffed event-by-event.
//!
//! The [`ScenarioReport`] carries per-tenant latency outcomes plus two
//! fleet-level fairness measures, both integer-valued so emitted JSON is
//! byte-stable: the Jain index over per-tenant mean latency (1000 =
//! perfectly even) and a Lorenz-style cumulative latency-share curve
//! (how much of the total latency "pain" the luckiest k/10 of tenants
//! absorb).

use std::fmt;

use nesc_core::{CompletionStatus, FuncId};
use nesc_hypervisor::{
    NescError, OpenRequest, ScenarioSpec, System, SystemBuilder, TelemetryConfig, TenantClass,
};
use nesc_sim::selfcheck::fnv1a_word;
use nesc_sim::{BurstyArrivals, Histogram, RunDigest, SimDuration, SimRng, SimTime, ZipfLike};
use nesc_storage::BlockOp;

/// Why a scenario could not be compiled or provisioned.
///
/// Every spec-level inconsistency is reported before any simulated work
/// happens, so a bad declaration costs nothing and panics nowhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The spec declares no tenants at all (or only populations of
    /// count 0).
    NoTenants,
    /// More tenants than the 16-bit function space can address (the PF
    /// and one spare slot are reserved).
    TooManyTenants {
        /// Declared tenant count.
        count: usize,
        /// Largest supported fleet.
        max: usize,
    },
    /// A population declares zero requests or zero-byte requests.
    EmptyTenantSpec {
        /// Index of the offending population in declaration order.
        population: usize,
    },
    /// A population's disk cannot hold even one of its requests.
    DiskTooSmall {
        /// Index of the offending population in declaration order.
        population: usize,
        /// Declared disk size in bytes.
        disk_bytes: u64,
        /// Declared request size in bytes.
        req_bytes: u64,
    },
    /// Provisioning a tenant's VM + image + VF failed.
    Provision {
        /// Global tenant index.
        tenant: usize,
        /// The underlying system error.
        source: NescError,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NoTenants => write!(f, "scenario has no tenants"),
            ScenarioError::TooManyTenants { count, max } => {
                write!(f, "{count} tenants exceed the VF space (max {max})")
            }
            ScenarioError::EmptyTenantSpec { population } => {
                write!(f, "tenant population {population} declares no work")
            }
            ScenarioError::DiskTooSmall {
                population,
                disk_bytes,
                req_bytes,
            } => write!(
                f,
                "tenant population {population}: {disk_bytes} B disk cannot hold one {req_bytes} B request"
            ),
            ScenarioError::Provision { tenant, source } => {
                write!(f, "provisioning tenant {tenant} failed: {source}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Provision { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Latency and volume outcome for one tenant.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Global tenant index (== disk index == `hv.vf<d>` series index).
    pub tenant: u32,
    /// The tenant's behavior class.
    pub class: TenantClass,
    /// Requests completed.
    pub requests: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Mean completion latency in nanoseconds.
    pub mean_ns: u64,
    /// Median completion latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile completion latency in nanoseconds.
    pub p99_ns: u64,
    /// Worst completion latency in nanoseconds.
    pub max_ns: u64,
    /// Requests that completed with a non-OK status.
    pub errors: u64,
}

/// The fleet-level result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub name: String,
    /// Seed the run was generated from.
    pub seed: u64,
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Requests completed across the fleet.
    pub total_requests: u64,
    /// Payload bytes moved across the fleet.
    pub total_bytes: u64,
    /// First arrival to last completion.
    pub makespan: SimDuration,
    /// Jain fairness index over per-tenant mean latency, in permille
    /// (1000 = all tenants experience identical mean latency).
    pub jain_permille: u64,
    /// Lorenz curve of latency share: entry `k` is the permille of total
    /// per-tenant latency mass absorbed by the `k`/10 least-affected
    /// tenants (11 points, 0 ‰ at k=0 to 1000 ‰ at k=10).
    pub lorenz_permille: Vec<u64>,
    /// SLO watchdog anomalies emitted during the run.
    pub slo_violations: u64,
    /// Final hash of the run's event digest (replay fingerprint).
    pub digest: u64,
}

impl ScenarioReport {
    /// Aggregate p99 (worst per-tenant p99) over one tenant class, in
    /// nanoseconds. Returns 0 if no tenant has that class.
    pub fn class_worst_p99_ns(&self, class: TenantClass) -> u64 {
        self.tenants
            .iter()
            .filter(|t| t.class == class)
            .map(|t| t.p99_ns)
            .max()
            .unwrap_or(0)
    }

    /// Number of tenants in one class.
    pub fn class_count(&self, class: TenantClass) -> u64 {
        self.tenants.iter().filter(|t| t.class == class).count() as u64
    }
}

/// One generated arrival, pre-merge.
struct TaggedArrival {
    req: OpenRequest,
    tenant: u32,
}

/// The scenario engine: compiles a [`ScenarioSpec`] and replays it.
#[derive(Debug, Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
}

impl Scenario {
    /// Wraps a spec.
    pub fn new(spec: ScenarioSpec) -> Self {
        Scenario { spec }
    }

    /// The spec being run.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The paper-scale mixed fleet: 850 steady + 100 bursty + 50 noisy
    /// neighbors = 1000 tenant VFs on one controller.
    pub fn datacenter_mix() -> Self {
        Scenario::new(
            ScenarioSpec::new("scale_mixed")
                .seed(0xD47A_CE17)
                .tenants(nesc_hypervisor::TenantSpec::steady(850).requests(56))
                .tenants(nesc_hypervisor::TenantSpec::bursty(100).requests(48))
                .tenants(nesc_hypervisor::TenantSpec::noisy(50).requests(96)),
        )
    }

    /// Runs the scenario.
    ///
    /// # Errors
    ///
    /// A [`ScenarioError`] on an empty or inconsistent spec (no tenants,
    /// requests of zero count or size, a disk smaller than one request,
    /// more tenants than the VF table can hold) or a provisioning
    /// failure; nothing is simulated in that case.
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        Ok(self.run_with_digest()?.0)
    }

    /// Runs the scenario, also returning the full event digest for
    /// replay diffing ([`nesc_sim::selfcheck::first_divergence`]).
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_with_digest(&self) -> Result<(ScenarioReport, RunDigest), ScenarioError> {
        let spec = &self.spec;
        let flat = self.flatten()?;
        let n = flat.len();
        let max = u16::MAX as usize - 2;
        if n > max {
            return Err(ScenarioError::TooManyTenants { count: n, max });
        }

        let mut sys = self.build_system(&flat);
        let base = self.provision(&mut sys, &flat)?;
        let (arrivals, tenant_of) = self.generate_tape(&flat, base);

        // --- Replay. ---
        let mut digest = RunDigest::new(4096);
        let mut hists: Vec<Histogram> = (0..n).map(|_| Histogram::new()).collect();
        let mut errors = vec![0u64; n];
        let mut completed = vec![0u64; n];
        sys.run_open_loop(&arrivals, |i, done, latency, status| {
            let t = tenant_of[i] as usize;
            hists[t].record(latency.as_nanos());
            completed[t] += 1;
            if status != CompletionStatus::Ok {
                errors[t] += 1;
            }
            let payload = fnv1a_word(t as u64, latency.as_nanos());
            digest.record(done, "req", fnv1a_word(payload, status as u64));
        });
        sys.telemetry_finish();
        let slo_violations = sys.telemetry().map_or(0, |t| t.anomalies().len() as u64);
        digest.section("slo_violations", slo_violations);
        let makespan = sys.now().saturating_since(base);

        // --- Fold outcomes. ---
        let tenants: Vec<TenantOutcome> = flat
            .iter()
            .enumerate()
            .map(|(t, spec_t)| {
                let h = &hists[t];
                TenantOutcome {
                    tenant: t as u32,
                    class: spec_t.class,
                    requests: completed[t],
                    bytes: completed[t] * spec_t.req_bytes,
                    mean_ns: h.mean() as u64,
                    p50_ns: h.percentile(50.0),
                    p99_ns: h.percentile(99.0),
                    max_ns: h.max(),
                    errors: errors[t],
                }
            })
            .collect();
        let total_requests = tenants.iter().map(|t| t.requests).sum();
        let total_bytes = tenants.iter().map(|t| t.bytes).sum();
        let jain_permille = jain_permille(tenants.iter().map(|t| t.mean_ns));
        let lorenz_permille = lorenz_permille(
            tenants
                .iter()
                .map(|t| t.mean_ns as u128 * t.requests as u128),
        );
        digest.section("jain", jain_permille);

        let report = ScenarioReport {
            name: spec.name.clone(),
            seed: spec.seed,
            tenants,
            total_requests,
            total_bytes,
            makespan,
            jain_permille,
            lorenz_permille,
            slo_violations,
            digest: digest.final_hash(),
        };
        Ok((report, digest))
    }

    /// Tenant populations flattened to one spec per tenant, in VF order.
    fn flatten(&self) -> Result<Vec<&nesc_hypervisor::TenantSpec>, ScenarioError> {
        let mut flat = Vec::new();
        for (population, pop) in self.spec.tenants.iter().enumerate() {
            if pop.req_bytes == 0 || pop.requests == 0 {
                return Err(ScenarioError::EmptyTenantSpec { population });
            }
            if pop.disk_bytes < pop.req_bytes {
                return Err(ScenarioError::DiskTooSmall {
                    population,
                    disk_bytes: pop.disk_bytes,
                    req_bytes: pop.req_bytes,
                });
            }
            for _ in 0..pop.count {
                flat.push(pop);
            }
        }
        if flat.is_empty() {
            return Err(ScenarioError::NoTenants);
        }
        Ok(flat)
    }

    /// Builds the system: capacity for every image, VF table headroom,
    /// telemetry + one declarative SLO rule per bounded tenant.
    fn build_system(&self, flat: &[&nesc_hypervisor::TenantSpec]) -> System {
        let spec = &self.spec;
        let image_blocks: u64 = flat.iter().map(|t| t.disk_bytes.div_ceil(1024)).sum();
        let rules: Vec<String> = flat
            .iter()
            .enumerate()
            .filter_map(|(t, s)| {
                s.slo_p99
                    .map(|bound| format!("hv.vf{t}.p99_ns above {} for 2", bound.as_nanos()))
            })
            .collect();
        let mut tel =
            TelemetryConfig::windowed(spec.telemetry_interval).capacity(spec.telemetry_capacity);
        if let Some(fc) = spec.flight {
            tel = tel.flight(fc);
        }
        SystemBuilder::new()
            .capacity_blocks(image_blocks * 2 + 64 * 1024)
            .max_vfs((flat.len() + 2) as u16)
            .telemetry(tel)
            .slo_rules(rules)
            .build()
    }

    /// Provisions every tenant (VM + preallocated image + VF + priority)
    /// and returns the tape origin time.
    fn provision(
        &self,
        sys: &mut System,
        flat: &[&nesc_hypervisor::TenantSpec],
    ) -> Result<SimTime, ScenarioError> {
        for (t, s) in flat.iter().enumerate() {
            let p = sys
                .try_quick_disk(
                    self.spec.disk_kind,
                    &format!("tenant_{t:04}.img"),
                    s.disk_bytes,
                )
                .map_err(|source| ScenarioError::Provision { tenant: t, source })?;
            // The SLO rules built above assume disk index == tenant index.
            debug_assert_eq!(p.disk.0, t, "tenant/disk numbering out of sync");
            if let Some(FuncId(f)) = sys.disk_vf(p.disk) {
                let set = sys.device_mut().set_priority(FuncId(f), s.priority);
                debug_assert!(set.is_ok(), "freshly provisioned VF is live");
            }
        }
        Ok(sys.now())
    }

    /// Generates and merges the per-tenant arrival tapes.
    fn generate_tape(
        &self,
        flat: &[&nesc_hypervisor::TenantSpec],
        base: SimTime,
    ) -> (Vec<OpenRequest>, Vec<u32>) {
        let mut master = SimRng::seed(self.spec.seed);
        let mut tape: Vec<TaggedArrival> = Vec::new();
        for (t, s) in flat.iter().enumerate() {
            let mut lane = master.fork(t as u64);
            let mut pick = lane.fork(1);
            let mut arrivals = match s.class {
                TenantClass::Bursty => {
                    BurstyArrivals::bursty(lane.fork(2), s.gap, s.idle_gap, s.mean_burst)
                }
                TenantClass::Steady | TenantClass::NoisyNeighbor => {
                    BurstyArrivals::steady(lane.fork(2), s.gap)
                }
            };
            let slots = s.disk_bytes / s.req_bytes;
            let zipf = ZipfLike::new(slots, s.hot_permille, s.weight_permille);
            let disk = nesc_hypervisor::DiskId(t);
            let mut at = base;
            for _ in 0..s.requests {
                at += arrivals.next_gap();
                let offset = zipf.sample(&mut pick) * s.req_bytes;
                let op = if pick.range(0, 1000) < s.write_permille {
                    BlockOp::Write
                } else {
                    BlockOp::Read
                };
                tape.push(TaggedArrival {
                    req: OpenRequest {
                        disk,
                        op,
                        offset,
                        bytes: s.req_bytes,
                        at,
                    },
                    tenant: t as u32,
                });
            }
        }
        // Stable sort on (time, tenant): deterministic global order that
        // preserves each tenant's own sequence.
        tape.sort_by_key(|a| (a.req.at, a.tenant));
        let tenant_of = tape.iter().map(|a| a.tenant).collect();
        let arrivals = tape.into_iter().map(|a| a.req).collect();
        (arrivals, tenant_of)
    }
}

/// Jain fairness index in permille over any positive metric: `(Σx)² /
/// (n·Σx²)`, all in integer arithmetic. 1000 means every tenant sees the
/// same value; `1000/n` means one tenant absorbs everything.
fn jain_permille(xs: impl Iterator<Item = u64>) -> u64 {
    let (mut sum, mut sq, mut n) = (0u128, 0u128, 0u128);
    for x in xs {
        let x = x as u128;
        sum += x;
        sq += x * x;
        n += 1;
    }
    if n == 0 || sq == 0 {
        return 1000;
    }
    (sum * sum * 1000 / (n * sq)) as u64
}

/// Lorenz curve in permille: sorts the per-tenant masses ascending and
/// reports the cumulative share held by the first `k`/10 of tenants, for
/// `k` in `0..=10`.
fn lorenz_permille(xs: impl Iterator<Item = u128>) -> Vec<u64> {
    let mut v: Vec<u128> = xs.collect();
    v.sort_unstable();
    let total: u128 = v.iter().sum();
    if v.is_empty() || total == 0 {
        return vec![0; 11];
    }
    let mut curve = Vec::with_capacity(11);
    for k in 0..=10u64 {
        let take = (v.len() as u64 * k / 10) as usize;
        let mass: u128 = v[..take].iter().sum();
        curve.push((mass * 1000 / total) as u64);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_hypervisor::TenantSpec;
    use nesc_sim::selfcheck::{first_divergence, self_check};
    use nesc_sim::Divergence;

    /// A reduced fleet that keeps test runtime low while still mixing
    /// all three classes across several priority levels.
    fn small_mix(seed: u64) -> Scenario {
        Scenario::new(
            ScenarioSpec::new("test_mix")
                .seed(seed)
                .tenants(TenantSpec::steady(12).requests(10))
                .tenants(TenantSpec::bursty(4).requests(8))
                .tenants(TenantSpec::noisy(2).requests(12)),
        )
    }

    #[test]
    fn mixed_scenario_completes_every_request() {
        let rep = small_mix(7).run().expect("valid spec");
        assert_eq!(rep.tenants.len(), 18);
        assert_eq!(rep.total_requests, 12 * 10 + 4 * 8 + 2 * 12);
        assert!(rep.tenants.iter().all(|t| t.errors == 0));
        assert!(rep.makespan > SimDuration::ZERO);
        assert!(rep.jain_permille > 0 && rep.jain_permille <= 1000);
        assert_eq!(rep.lorenz_permille.len(), 11);
        assert_eq!(rep.lorenz_permille[0], 0);
        assert_eq!(rep.lorenz_permille[10], 1000);
        assert!(rep.lorenz_permille.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn same_seed_is_replay_identical() {
        let hash = self_check(21, |s| {
            small_mix(s).run_with_digest().expect("valid spec").1
        })
        .expect("same spec, same seed: no divergence");
        assert_ne!(hash, 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let (ra, da) = small_mix(1).run_with_digest().expect("valid spec");
        let (rb, db) = small_mix(2).run_with_digest().expect("valid spec");
        assert_ne!(ra.digest, rb.digest);
        match first_divergence(&da, &db).expect("different tapes must diverge") {
            Divergence::Event { a, .. } => assert_eq!(a.label, "req"),
            other => panic!("expected an event divergence, got {other}"),
        }
    }

    #[test]
    fn demoting_noisy_neighbors_protects_steady_tenants() {
        // The declarative priority knob must reach the device QoS mux:
        // steady tenants can only do better (or equal) when the noisy
        // class is demoted below them instead of promoted above them.
        let run = |noisy_priority: u8| {
            Scenario::new(
                ScenarioSpec::new("prio")
                    .seed(11)
                    .tenants(TenantSpec::steady(6).requests(24))
                    .tenants(TenantSpec::noisy(4).requests(48).priority(noisy_priority)),
            )
            .run()
            .expect("valid spec")
        };
        let demoted = run(2).class_worst_p99_ns(TenantClass::Steady);
        let promoted = run(0).class_worst_p99_ns(TenantClass::Steady);
        assert!(demoted > 0 && promoted > 0);
        assert!(
            demoted <= promoted,
            "steady p99 {demoted} ns with noisy demoted should not exceed {promoted} ns with noisy promoted"
        );
    }

    #[test]
    fn slo_rules_fire_when_bound_is_impossible() {
        // A 1 ns p99 bound is unmeetable: the watchdog must report it.
        // Window sized so every telemetry window holds requests (the
        // "for 2" clause needs consecutive non-empty windows).
        let rep = Scenario::new(
            ScenarioSpec::new("slo")
                .seed(3)
                .telemetry(SimDuration::from_millis(30), 64)
                .tenants(
                    TenantSpec::steady(2)
                        .requests(40)
                        .slo_p99(Some(SimDuration::from_nanos(1))),
                ),
        )
        .run()
        .expect("valid spec");
        assert!(rep.slo_violations > 0, "unmeetable SLO must trip");
    }

    #[test]
    fn fairness_math() {
        assert_eq!(jain_permille([5, 5, 5, 5].into_iter()), 1000);
        // One tenant absorbs everything: 1000/n.
        assert_eq!(jain_permille([8, 0, 0, 0].into_iter()), 250);
        assert_eq!(jain_permille(std::iter::empty()), 1000);
        let curve = lorenz_permille([1u128, 1, 1, 1].into_iter());
        assert_eq!(curve[5], 500);
        let skewed = lorenz_permille([0u128, 0, 0, 97].into_iter());
        assert!(skewed[7] == 0 && skewed[10] == 1000);
    }
}
