//! Common workload reporting.

use nesc_sim::{Histogram, SimDuration};

/// What every workload run reports.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload name (for harness output).
    pub name: String,
    /// Operations (or transactions) completed.
    pub ops: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Simulated wall-clock the run took.
    pub elapsed: SimDuration,
    /// Per-operation latency histogram (nanoseconds).
    pub latency: Histogram,
}

impl WorkloadReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadReport {
            name: name.into(),
            ops: 0,
            bytes: 0,
            elapsed: SimDuration::ZERO,
            latency: Histogram::new(),
        }
    }

    /// Records one completed operation.
    pub fn record(&mut self, bytes: u64, latency: SimDuration) {
        self.ops += 1;
        self.bytes += bytes;
        self.latency.record_duration(latency);
    }

    /// Operations per second over the run.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.ops as f64 / s
        }
    }

    /// Decimal MB/s over the run.
    pub fn mbps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / s
        }
    }

    /// Mean operation latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1e3
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} ops, {:.2} MB, {:.3} s -> {:.0} ops/s, {:.1} MB/s, mean {:.1} us, p99 {:.1} us",
            self.name,
            self.ops,
            self.bytes as f64 / 1e6,
            self.elapsed.as_secs_f64(),
            self.ops_per_sec(),
            self.mbps(),
            self.mean_latency_us(),
            self.latency.percentile(99.0) as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let mut r = WorkloadReport::new("t");
        r.record(1_000_000, SimDuration::from_micros(10));
        r.record(1_000_000, SimDuration::from_micros(30));
        r.elapsed = SimDuration::from_millis(1);
        assert_eq!(r.ops, 2);
        assert!((r.ops_per_sec() - 2000.0).abs() < 1e-9);
        assert!((r.mbps() - 2000.0).abs() < 1e-9);
        assert!((r.mean_latency_us() - 20.0).abs() < 0.5);
        assert!(r.summary().contains("t:"));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = WorkloadReport::new("e");
        assert_eq!(r.ops_per_sec(), 0.0);
        assert_eq!(r.mbps(), 0.0);
    }
}
