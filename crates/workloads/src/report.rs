//! Common workload reporting.
//!
//! [`WorkloadReport`] lives in `nesc_hypervisor::workload` alongside the
//! [`Workload`](nesc_hypervisor::Workload) trait it reports for; this
//! module re-exports it so `nesc_workloads::WorkloadReport` keeps
//! working.

pub use nesc_hypervisor::workload::WorkloadReport;
