//! GNU dd.
//!
//! "We first evaluated read/write performance metrics (e.g., bandwidth,
//! latency) using the dd Unix utility" (paper §VI). Two modes mirror how
//! the paper uses it:
//!
//! * [`DdMode::Sync`] — one request at a time (O_DIRECT-style): the
//!   latency measurements of Figs. 9 and 11;
//! * [`DdMode::Pipelined`] — a queue of requests in flight (page-cache
//!   readahead/writeback): the bandwidth measurements of Figs. 2 and 10.
//!
//! `dd` is a raw-block workload: its [`Workload::run`] uses the tenant's
//! disk directly and never touches the guest filesystem.

use nesc_hypervisor::{TenantIo, Workload};
use nesc_storage::BlockOp;

use crate::report::WorkloadReport;

/// How requests are issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdMode {
    /// Strictly one outstanding request (latency mode).
    Sync,
    /// `qd` outstanding requests (bandwidth mode).
    Pipelined {
        /// Queue depth.
        qd: usize,
    },
}

/// A dd run description.
#[derive(Debug, Clone, Copy)]
pub struct Dd {
    /// Read or write.
    pub op: BlockOp,
    /// Block size in bytes (`bs=`).
    pub block_bytes: u64,
    /// Number of blocks (`count=`).
    pub count: u64,
    /// Issue mode.
    pub mode: DdMode,
    /// Starting byte offset on the device.
    pub start_offset: u64,
}

impl Dd {
    /// A sequential run of `count` × `block_bytes` starting at offset 0.
    pub fn new(op: BlockOp, block_bytes: u64, count: u64, mode: DdMode) -> Self {
        Dd {
            op,
            block_bytes,
            count,
            mode,
            start_offset: 0,
        }
    }
}

impl Workload for Dd {
    fn name(&self) -> String {
        format!(
            "dd {} bs={} count={}",
            self.op, self.block_bytes, self.count
        )
    }

    /// Runs against the tenant's raw virtual disk.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    fn run(&self, io: &mut TenantIo<'_>) -> WorkloadReport {
        assert!(self.count > 0 && self.block_bytes > 0, "empty dd run");
        let mut report = WorkloadReport::new(self.name());
        let disk = io.disk();
        let system = io.system();
        let start = system.now();
        match self.mode {
            DdMode::Sync => {
                let payload = vec![0x6Du8; self.block_bytes as usize];
                let mut read_buf = vec![0u8; self.block_bytes as usize];
                for i in 0..self.count {
                    let offset = self.start_offset + i * self.block_bytes;
                    let lat = match self.op {
                        BlockOp::Write => system.write(disk, offset, &payload),
                        BlockOp::Read => system.read(disk, offset, &mut read_buf),
                    };
                    report.record(self.block_bytes, lat);
                }
            }
            DdMode::Pipelined { qd } => {
                let res = system.stream(
                    disk,
                    self.op,
                    self.start_offset,
                    self.count * self.block_bytes,
                    self.block_bytes,
                    qd,
                );
                // Stream mode reports aggregate only; per-op latency is the
                // mean service interval.
                for _ in 0..res.ops {
                    report.record(self.block_bytes, res.elapsed / res.ops.max(1));
                }
            }
        }
        report.elapsed = system.now() - start;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_core::NescConfig;
    use nesc_hypervisor::{DiskKind, SoftwareCosts, System};

    fn system() -> System {
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 64 * 1024;
        System::new(cfg, SoftwareCosts::calibrated())
    }

    #[test]
    fn sync_dd_reports_per_op_latency() {
        let mut sys = system();
        let disk = sys.quick_disk(DiskKind::NescDirect, "dd.img", 8 << 20).disk;
        let rep = Dd::new(BlockOp::Write, 4096, 16, DdMode::Sync)
            .run(&mut TenantIo::attached(&mut sys, disk));
        assert_eq!(rep.ops, 16);
        assert_eq!(rep.bytes, 16 * 4096);
        assert!(rep.latency.count() == 16);
        assert!(rep.mean_latency_us() > 1.0);
    }

    #[test]
    fn pipelined_dd_faster_than_sync() {
        let mut sys = system();
        let disk = sys
            .quick_disk(DiskKind::NescDirect, "dd2.img", 16 << 20)
            .disk;
        let sync = Dd::new(BlockOp::Read, 4096, 256, DdMode::Sync)
            .run(&mut TenantIo::attached(&mut sys, disk));
        let piped = Dd::new(BlockOp::Read, 4096, 256, DdMode::Pipelined { qd: 16 })
            .run(&mut TenantIo::attached(&mut sys, disk));
        assert!(
            piped.mbps() > sync.mbps() * 1.5,
            "pipelined {:.0} vs sync {:.0} MB/s",
            piped.mbps(),
            sync.mbps()
        );
    }

    #[test]
    fn dd_respects_start_offset() {
        let mut sys = system();
        let disk = sys
            .quick_disk(DiskKind::NescDirect, "dd3.img", 8 << 20)
            .disk;
        let mut dd = Dd::new(BlockOp::Write, 1024, 4, DdMode::Sync);
        dd.start_offset = 1 << 20;
        dd.run(&mut TenantIo::attached(&mut sys, disk));
        let mut buf = vec![0u8; 1024];
        sys.read(disk, 1 << 20, &mut buf);
        assert!(buf.iter().all(|&b| b == 0x6D));
    }
}
