//! Mixed multi-VF divergence-check workload.
//!
//! The workload half of the runtime determinism backstop: a seeded mix of
//! reads and writes spread across several NeSC virtual functions, with
//! tracing on, digested into a [`RunDigest`]. Running it twice through
//! [`nesc_sim::selfcheck::self_check`] must produce identical digests;
//! any difference is a determinism bug the static linter (`nesc-lint`)
//! missed, and the digest names the first diverging event.
//!
//! This intentionally exercises the *breadth* of the system rather than
//! one path: multiple VFs (so the round-robin scheduler and per-function
//! state interleave), both operations (so the write payload path and the
//! read extraction path both run), tracing enabled (so the span tree is
//! part of the compared surface), and the metrics registry folded in at
//! the end.

use nesc_hypervisor::{DiskId, DiskKind, System, SystemBuilder, TelemetryConfig};
use nesc_sim::selfcheck::{fnv1a, RunDigest};
use nesc_sim::{perfmon, FlightConfig, SimDuration, SimRng};
use nesc_storage::BlockOp;

/// Configuration for the mixed multi-VF self-check run.
#[derive(Debug, Clone, Copy)]
pub struct MixedVfSelfCheck {
    /// Number of NeSC virtual functions (one per guest VM).
    pub vfs: usize,
    /// Total requests across all VFs.
    pub requests: u64,
    /// Request size in bytes (must be block-aligned).
    pub io_bytes: u64,
    /// Per-disk virtual size in bytes.
    pub disk_bytes: u64,
    /// Fraction of requests that are reads, in percent (0..=100).
    pub read_percent: u64,
    /// Digest checkpoint cadence (records per checkpoint).
    pub checkpoint_every: usize,
}

impl Default for MixedVfSelfCheck {
    fn default() -> Self {
        MixedVfSelfCheck {
            vfs: 3,
            requests: 96,
            io_bytes: 8192,
            disk_bytes: 4 << 20,
            read_percent: 60,
            checkpoint_every: 16,
        }
    }
}

impl MixedVfSelfCheck {
    /// Builds the system and runs the seeded request mix, returning the
    /// run's digest. Everything observable goes into the digest: one
    /// record per request completion (VF, op, offset, latency, payload
    /// hash for reads), every span, the span-tree shape, the metrics
    /// registry, and the perfmon time series.
    pub fn digest(&self, seed: u64) -> RunDigest {
        let mut sys = SystemBuilder::new()
            .capacity_blocks((self.disk_bytes / 512) * (self.vfs as u64 + 1))
            .max_vfs(self.vfs as u16 + 2)
            .tracing(true)
            .telemetry(
                TelemetryConfig::windowed(SimDuration::from_micros(50))
                    .capacity(4096)
                    .rule_text("hv.vf0.requests above 0 for 3")
                    .flight(FlightConfig::default()),
            )
            .build();
        let disks: Vec<DiskId> = (0..self.vfs)
            .map(|i| {
                sys.quick_disk(DiskKind::NescDirect, &format!("vf{i}.img"), self.disk_bytes)
                    .disk
            })
            .collect();

        let mut rng = SimRng::seed(seed);
        let mut digest = RunDigest::new(self.checkpoint_every);
        let slots = self.disk_bytes / self.io_bytes;
        let payload: Vec<u8> = (0..self.io_bytes).map(|i| (i % 251) as u8).collect();
        let mut read_buf = vec![0u8; self.io_bytes as usize];

        for i in 0..self.requests {
            let vf = rng.range(0, self.vfs as u64) as usize;
            let offset = rng.range(0, slots) * self.io_bytes;
            let op = if rng.range(0, 100) < self.read_percent {
                BlockOp::Read
            } else {
                BlockOp::Write
            };
            let (latency, data_hash) = match op {
                BlockOp::Write => (sys.write(disks[vf], offset, &payload), fnv1a(&payload)),
                BlockOp::Read => {
                    let l = sys.read(disks[vf], offset, &mut read_buf);
                    (l, fnv1a(&read_buf))
                }
            };
            let mut p = nesc_sim::selfcheck::fnv1a_word(data_hash, offset);
            p = nesc_sim::selfcheck::fnv1a_word(p, latency.as_nanos());
            p = nesc_sim::selfcheck::fnv1a_word(p, i);
            digest.record(sys.now(), format!("vf{vf}:{op}"), p);
        }

        // Close the final telemetry window (and fold the flight recorder's
        // pending exemplars, which capture span subtrees) BEFORE draining
        // the tracer: `take_spans` is destructive.
        sys.telemetry_finish();
        digest.section("flight", sys.flight().digest_hash());
        let tel = sys.telemetry().expect("telemetry enabled");
        let forensic = tel
            .forensic_dump()
            .map(|d| fnv1a(serde_json::to_string(d).unwrap_or_default().as_bytes()))
            .unwrap_or(0);
        digest.section("forensic", forensic);
        digest.section("telemetry", perfmon::digest_hash(tel.sampler()));
        let spans = system_spans(&mut sys);
        digest.record_spans(&spans);
        digest.span_tree_section(&spans);
        digest.metrics_section(sys.metrics());
        digest
    }
}

/// Drains the system's recorded spans.
fn system_spans(sys: &mut System) -> Vec<nesc_sim::Span> {
    sys.take_spans()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_sim::selfcheck::{first_divergence, self_check};

    #[test]
    fn same_seed_digests_are_identical() {
        let wl = MixedVfSelfCheck {
            vfs: 2,
            requests: 24,
            ..MixedVfSelfCheck::default()
        };
        let hash = self_check(0xA11C_E5ED, |s| wl.digest(s)).expect("deterministic");
        assert_ne!(hash, 0);
    }

    #[test]
    fn different_seeds_diverge_with_named_event() {
        let wl = MixedVfSelfCheck {
            vfs: 2,
            requests: 24,
            ..MixedVfSelfCheck::default()
        };
        let d = first_divergence(&wl.digest(1), &wl.digest(2)).expect("seeds must differ");
        let msg = d.to_string();
        assert!(
            msg.contains("diverg"),
            "report should describe the divergence: {msg}"
        );
    }

    #[test]
    fn digest_covers_requests_and_spans() {
        let wl = MixedVfSelfCheck {
            vfs: 2,
            requests: 16,
            ..MixedVfSelfCheck::default()
        };
        let d = wl.digest(7);
        // At least one record per request plus the span stream.
        assert!(d.len() > 16, "digest too small: {} records", d.len());
    }
}
