#![warn(missing_docs)]

//! Workload generators for the NeSC evaluation (paper Table II).
//!
//! | paper benchmark | module | what it does |
//! |-----------------|--------|--------------|
//! | GNU dd          | [`dd`] | sequential read/write of a raw virtual device at a given block size, synchronous (latency, Fig. 9/11) or pipelined (bandwidth, Fig. 10) |
//! | Sysbench File I/O | [`fileio`] | a sequence of random file operations over the guest filesystem |
//! | Postmark        | [`postmark`] | mail-server simulation: create/delete/read/append transactions over many small files |
//! | MySQL + SysBench OLTP | [`oltp`] | a page-based relational store with a write-ahead log serving point/update transactions |
//!
//! All workloads implement the common
//! [`Workload`](nesc_hypervisor::Workload) trait — deterministic given a
//! seed, run against a [`TenantIo`](nesc_hypervisor::TenantIo), reporting
//! a common [`WorkloadReport`] (operations, bytes, latency percentiles,
//! throughput).
//!
//! The [`scenario`] module scales the same vocabulary out to datacenter
//! tenancy: a declarative [`ScenarioSpec`](nesc_hypervisor::ScenarioSpec)
//! describing hundreds-to-thousands of tenant VFs is compiled into one
//! deterministic open-loop arrival tape and replayed through a single
//! system, yielding per-tenant latency and fairness metrics.

pub mod dd;
pub mod fileio;
pub mod oltp;
pub mod postmark;
pub mod report;
pub mod scenario;
pub mod selfcheck;

pub use dd::{Dd, DdMode};
pub use fileio::{FileIo, FileTestMode};
pub use nesc_hypervisor::{ScenarioSpec, TenantClass, TenantIo, TenantSpec, Workload};
pub use oltp::Oltp;
pub use postmark::Postmark;
pub use report::WorkloadReport;
pub use scenario::{ScenarioError, ScenarioReport, TenantOutcome};
pub use selfcheck::MixedVfSelfCheck;
