//! Postmark: mail-server simulation (Table II).
//!
//! Follows the original benchmark's structure: create an initial pool of
//! small files with sizes drawn from a bounded heavy-tailed distribution,
//! then run transactions, each either {create or delete} or {read or
//! append}, and finally report transactions per second.

use nesc_fs::Ino;
use nesc_hypervisor::{GuestFilesystem, System, TenantIo, Workload};
use nesc_sim::{SimDuration, SimRng};

use crate::report::WorkloadReport;

/// A Postmark run.
#[derive(Debug, Clone, Copy)]
pub struct Postmark {
    /// Initial (and steady-state target) number of files.
    pub initial_files: u32,
    /// Minimum file size in bytes.
    pub min_file_bytes: u64,
    /// Maximum file size in bytes.
    pub max_file_bytes: u64,
    /// Number of transactions.
    pub transactions: u64,
    /// Read size / append size unit.
    pub io_bytes: u64,
    /// Mail-server CPU per transaction (parsing, indexing).
    pub compute_per_tx: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Postmark {
    fn default() -> Self {
        Postmark {
            initial_files: 64,
            min_file_bytes: 512,
            max_file_bytes: 64 * 1024,
            transactions: 200,
            io_bytes: 4096,
            compute_per_tx: SimDuration::from_micros(100),
            seed: 0x6D61_696C_706F_7374, // "mailpost"
        }
    }
}

impl Postmark {
    /// Runs the whole benchmark (setup + transactions) and reports the
    /// transaction phase.
    ///
    /// # Panics
    ///
    /// Panics if configured with zero files or transactions.
    fn run_on(&self, system: &mut System, gfs: &mut GuestFilesystem) -> WorkloadReport {
        assert!(self.initial_files > 0 && self.transactions > 0, "empty run");
        let mut rng = SimRng::seed(self.seed);
        let mut next_name = 0u64;
        let mut pool: Vec<(Ino, u64)> = Vec::new(); // (ino, size)

        // --- Setup phase: create the initial pool. ---
        for _ in 0..self.initial_files {
            let size = rng.bounded_pareto(self.min_file_bytes, self.max_file_bytes, 1.2);
            let ino = self.create_file(system, gfs, &mut next_name, size, &mut rng);
            pool.push((ino, size));
        }

        // --- Transaction phase. ---
        let mut report = WorkloadReport::new("postmark");
        let start = system.now();
        for _ in 0..self.transactions {
            let t0 = system.now();
            let mut bytes = 0u64;
            system.charge_vcpu(gfs.vm(), self.compute_per_tx);
            if rng.chance(0.5) {
                // File management transaction: create or delete.
                if rng.chance(0.5) || pool.len() <= 1 {
                    let size = rng.bounded_pareto(self.min_file_bytes, self.max_file_bytes, 1.2);
                    let ino = self.create_file(system, gfs, &mut next_name, size, &mut rng);
                    pool.push((ino, size));
                    bytes = size;
                } else {
                    let idx = rng.range(0, pool.len() as u64) as usize;
                    let (ino, _) = pool.swap_remove(idx);
                    let name = Self::name_of(gfs, ino);
                    gfs.unlink(system, &name).expect("pool entry exists");
                }
            } else {
                // Data transaction: read or append.
                let idx = rng.range(0, pool.len() as u64) as usize;
                let (ino, size) = pool[idx];
                if rng.chance(0.5) {
                    let (data, _) = gfs
                        .read(system, ino, 0, size.min(self.io_bytes) as usize)
                        .expect("file exists");
                    bytes = data.len() as u64;
                } else {
                    let chunk = vec![0xE4u8; self.io_bytes as usize];
                    gfs.write(system, ino, size, &chunk).expect("space");
                    pool[idx].1 = size + self.io_bytes;
                    bytes = self.io_bytes;
                }
            }
            report.record(bytes, system.now() - t0);
        }
        report.elapsed = system.now() - start;
        report
    }

    fn create_file(
        &self,
        system: &mut System,
        gfs: &mut GuestFilesystem,
        next_name: &mut u64,
        size: u64,
        _rng: &mut SimRng,
    ) -> Ino {
        let name = format!("mail_{next_name}");
        *next_name += 1;
        let ino = gfs.create(system, &name).expect("fresh name");
        let chunk = vec![0x40u8; 16 * 1024];
        let mut off = 0;
        while off < size {
            let n = chunk.len().min((size - off) as usize);
            gfs.write(system, ino, off, &chunk[..n]).expect("space");
            off += n as u64;
        }
        ino
    }

    /// Recovers the name bound to an inode (the pool tracks inos).
    fn name_of(gfs: &GuestFilesystem, ino: Ino) -> String {
        // Names are unique and enumerable through the filesystem's listing.
        for name in gfs.fs().list() {
            if gfs.fs().lookup(name) == Some(ino) {
                return name.to_string();
            }
        }
        panic!("inode {ino} has no name");
    }
}

impl Workload for Postmark {
    fn name(&self) -> String {
        "postmark".to_string()
    }

    fn run(&self, io: &mut TenantIo<'_>) -> WorkloadReport {
        let (system, gfs) = io.fs();
        self.run_on(system, gfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_core::NescConfig;
    use nesc_hypervisor::{DiskKind, SoftwareCosts};

    fn quick(kind: DiskKind) -> WorkloadReport {
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 128 * 1024;
        let mut sys = System::new(cfg, SoftwareCosts::calibrated());
        Postmark {
            initial_files: 12,
            transactions: 40,
            max_file_bytes: 16 * 1024,
            ..Default::default()
        }
        .run(&mut TenantIo::provision(&mut sys, kind, "pm.img", 64 << 20))
    }

    #[test]
    fn completes_transactions() {
        let rep = quick(DiskKind::NescDirect);
        assert_eq!(rep.ops, 40);
        assert!(rep.ops_per_sec() > 0.0);
    }

    #[test]
    fn direct_beats_emulation() {
        let d = quick(DiskKind::NescDirect);
        let e = quick(DiskKind::Emulated);
        assert!(
            d.ops_per_sec() > e.ops_per_sec() * 1.5,
            "direct {:.0} vs emulated {:.0} tx/s",
            d.ops_per_sec(),
            e.ops_per_sec()
        );
    }

    #[test]
    fn deterministic() {
        let a = quick(DiskKind::Virtio);
        let b = quick(DiskKind::Virtio);
        assert_eq!(a.elapsed, b.elapsed);
    }
}
