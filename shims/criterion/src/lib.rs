//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds in network-restricted environments where crates-io
//! is unreachable, so the real `criterion` cannot be fetched. This shim
//! keeps the `benches/` harnesses compiling and *measuring*: it implements
//! the small API surface they use (`Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros) over a plain
//! `std::time::Instant` harness.
//!
//! Measurement model: each benchmark is warmed up for ~3% of the sample
//! budget, then timed for `sample_size` samples of adaptively sized
//! iteration batches; the per-iteration median, minimum, and mean are
//! printed. There is no statistical regression analysis, plotting, or
//! result persistence — use the numbers as order-of-magnitude wall-clock
//! tracking, which is what the repo's benches need.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (printed alongside times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Things accepted as a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    /// Median nanoseconds per iteration.
    median_ns: f64,
    /// Minimum nanoseconds per iteration.
    min_ns: f64,
    samples: usize,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            mean_ns: 0.0,
            median_ns: 0.0,
            min_ns: 0.0,
            samples,
        }
    }

    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~2 ms per sample?
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(2) {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_sample = calib_iters.max(1);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.min_ns = sample_ns[0];
        self.median_ns = sample_ns[sample_ns.len() / 2];
        self.mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
    }
}

/// A named set of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finishes the group (printing already happened per benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let thr = match self.throughput {
            Some(Throughput::Bytes(n)) if b.median_ns > 0.0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / (1024.0 * 1024.0) / (b.median_ns * 1e-9)
                )
            }
            Some(Throughput::Elements(n)) if b.median_ns > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / (b.median_ns * 1e-9))
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: median {}  min {}  mean {}{}",
            self.name,
            id,
            fmt_ns(b.median_ns),
            fmt_ns(b.min_ns),
            fmt_ns(b.mean_ns),
            thr
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (no group settings).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function calling each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(b.median_ns > 0.0);
        assert!(b.min_ns <= b.mean_ns * 1.5);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("depth", 3).to_string(), "depth/3");
        assert_eq!(BenchmarkId::from_parameter("nesc").to_string(), "nesc");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| std::hint::black_box(1)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
    }
}
