//! Minimal, dependency-free stand-in for the `serde_json` crate.
//!
//! The workspace builds in network-restricted environments where crates-io
//! is unreachable. The repo only uses `serde_json` to build result objects
//! with the `json!` macro and serialize them with `to_string_pretty`, so
//! this shim implements exactly that: a [`Value`] tree (object keys kept in
//! insertion order so emitted files are deterministic), `From` conversions
//! for the primitive types the benches use, a recursive `json!` macro, and
//! a pretty printer with 2-space indentation and standard JSON string
//! escaping. There is no deserialization and no serde `Serialize` bridge.

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as f64 plus a flag for integer formatting).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Keys keep insertion order for deterministic output.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integers render without a decimal point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so u64 > i64::MAX round-trips).
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        // Match serde_json: whole floats print as "1.0".
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // serde_json forbids non-finite floats; emit null.
                    write!(f, "null")
                }
            }
        }
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        })*
    };
}
from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::UInt(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::UInt(v as u64))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl Value {
    /// Object lookup by key; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object lookup by key; `None` for non-objects or missing keys.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + STEP);
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + STEP);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// By-reference conversion into [`Value`], mirroring how the real `json!`
/// macro serializes expression values via `to_value(&expr)` — so call sites
/// can embed `series[0]` or other non-`Copy` places without moving them.
pub trait ToValue {
    /// Builds a [`Value`] from a borrow of `self`.
    fn to_value(&self) -> Value;
}

macro_rules! to_value_via_from {
    ($($t:ty),*) => {
        $(impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        })*
    };
}
to_value_via_from!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool);

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue, const N: usize> ToValue for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Converts any [`ToValue`] borrow into an owned [`Value`].
pub fn to_value<T: ToValue + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialization error type (kept for API parity; serialization here is
/// infallible).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes a [`Value`] with 2-space indentation.
pub fn to_string_pretty<T: AsValue>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.as_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Serializes a [`Value`] compactly.
pub fn to_string<T: AsValue>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.as_value().write_compact(&mut out);
    Ok(out)
}

/// Borrow-as-`Value` bridge so `to_string_pretty(&value)` works on both
/// `&Value` and `&&Value` call shapes.
pub trait AsValue {
    /// The underlying value.
    fn as_value(&self) -> &Value;
}

impl AsValue for Value {
    fn as_value(&self) -> &Value {
        self
    }
}

impl AsValue for &Value {
    fn as_value(&self) -> &Value {
        self
    }
}

/// Builds a [`Value`] from JSON-like syntax: objects (string-literal keys),
/// arrays, `null`, and any expression with an `Into<Value>` conversion.
/// Object and array bodies are consumed by tt-munchers so values may be
/// arbitrary Rust expressions (`bs / 1024`, `cfg.link.bandwidth()`) or
/// nested `{...}`/`[...]` literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {
        $crate::Value::Array($crate::json_items!(@items [] $($tt)*))
    };
    ({ $($tt:tt)* }) => {
        $crate::Value::Object($crate::json_pairs!(@pairs [] $($tt)*))
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: munches `key: value` pairs of a `json!` object body into a
/// `Vec<(String, Value)>`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_pairs {
    (@pairs [$($acc:tt)*]) => { ::std::vec![$($acc)*] };
    (@pairs [$($acc:tt)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_pairs!(@pairs
            [$($acc)* (::std::string::String::from($key), $crate::Value::Null),]
            $($($rest)*)?)
    };
    (@pairs [$($acc:tt)*] $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_pairs!(@pairs
            [$($acc)* (::std::string::String::from($key), $crate::json!({ $($inner)* })),]
            $($($rest)*)?)
    };
    (@pairs [$($acc:tt)*] $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_pairs!(@pairs
            [$($acc)* (::std::string::String::from($key), $crate::json!([ $($inner)* ])),]
            $($($rest)*)?)
    };
    (@pairs [$($acc:tt)*] $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_pairs!(@pairs
            [$($acc)* (::std::string::String::from($key), $crate::to_value(&$val)),]
            $($($rest)*)?)
    };
}

/// Internal: munches the elements of a `json!` array body into a
/// `Vec<Value>`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    (@items [$($acc:tt)*]) => { ::std::vec![$($acc)*] };
    (@items [$($acc:tt)*] null $(, $($rest:tt)*)?) => {
        $crate::json_items!(@items [$($acc)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@items [$($acc:tt)*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_items!(@items [$($acc)* $crate::json!({ $($inner)* }),] $($($rest)*)?)
    };
    (@items [$($acc:tt)*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_items!(@items [$($acc)* $crate::json!([ $($inner)* ]),] $($($rest)*)?)
    };
    (@items [$($acc:tt)*] $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_items!(@items [$($acc)* $crate::to_value(&$val),] $($($rest)*)?)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(true)).unwrap(), "true");
        assert_eq!(to_string(&json!(42u64)).unwrap(), "42");
        assert_eq!(to_string(&json!(-3i64)).unwrap(), "-3");
        assert_eq!(to_string(&json!(1.5f64)).unwrap(), "1.5");
        assert_eq!(to_string(&json!(2.0f64)).unwrap(), "2.0");
        assert_eq!(to_string(&json!("hi\n")).unwrap(), "\"hi\\n\"");
    }

    #[test]
    fn nested_object_and_array() {
        let rows = vec![vec![1u64, 2], vec![3, 4]];
        let label = String::from("seq");
        let v = json!({
            "name": "fig10",
            "config": { "depth": 3, "qos": true },
            "rows": rows,
            "label": label,
            "sizes": [512, 1024],
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            "{\"name\":\"fig10\",\"config\":{\"depth\":3,\"qos\":true},\
             \"rows\":[[1,2],[3,4]],\"label\":\"seq\",\"sizes\":[512,1024]}"
        );
    }

    #[test]
    fn pretty_output_is_indented_and_ordered() {
        let v = json!({ "b": 1, "a": [true] });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"b\": 1,\n  \"a\": [\n    true\n  ]\n}");
    }

    #[test]
    fn value_variables_embed() {
        let inner: Value = json!([1, 2]);
        let v = json!({ "inner": inner, "opt": Option::<u64>::None });
        assert_eq!(v.get("inner"), Some(&json!([1, 2])));
        assert_eq!(v.get("opt"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn multi_token_expression_values() {
        struct Cfg {
            depth: u64,
        }
        impl Cfg {
            fn bw(&self) -> f64 {
                2.5
            }
        }
        let cfg = Cfg { depth: 4 };
        let series = [vec![1u64], vec![2]];
        let bs = 65536u64;
        let v = json!({
            "block_kb": bs / 1024,
            "depth": cfg.depth + 1,
            "bw": cfg.bw(),
            "first": series[0].clone(),
        });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"block_kb\":64,\"depth\":5,\"bw\":2.5,\"first\":[1]}"
        );
    }

    #[test]
    fn float_vectors_convert() {
        let v = json!(vec![vec![1.0f64, 2.5], vec![3.0]]);
        assert_eq!(to_string(&v).unwrap(), "[[1.0,2.5],[3.0]]");
    }
}
