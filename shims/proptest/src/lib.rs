//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in network-restricted environments where crates-io
//! is unreachable, so the real `proptest` cannot be fetched. This shim
//! implements exactly the API surface the workspace's property tests use:
//!
//! * `proptest! { ... }` with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * integer-range strategies (`0u64..1000`), `any::<T>()`, tuples of
//!   strategies, and `proptest::collection::vec(strategy, len_range)`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`,
//!   and `TestCaseError::fail`.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a deterministic per-test PRNG (the same values on every run,
//! so failures are trivially reproducible offline), and there is **no
//! shrinking** — a failing case reports the raw inputs via the panic
//! message of the assertion that fired. Each generator biases toward range
//! endpoints so the usual off-by-one edge cases are still exercised.

/// Deterministic test-case randomness and error plumbing.
pub mod test_runner {
    use std::fmt;

    /// Error returned (via `prop_assert!` and friends) by a failing case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The inputs do not satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Creates a rejection (assumption not met; the case is skipped).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps whole-workspace runs
            // fast while still sweeping the biased endpoint cases below.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64-based deterministic generator for test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a raw 64-bit value.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Derives the rng for one (test, case) pair: stable across runs.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h ^ ((case as u64) << 32 | case as u64))
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is irrelevant for test-input generation.
            self.next_u64() % n
        }
    }
}

/// Input strategies: how each test argument is generated.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. Unlike real proptest there is no value tree and
    /// no shrinking; a strategy just samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Generates any value of `T` (integers bias toward 0 and the maximum).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // 1-in-8 bias to each endpoint.
                    match rng.below(8) {
                        0 => 0,
                        1 => <$t>::MAX,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    match rng.below(8) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    // Bias toward both endpoints so boundary bugs surface.
                    let off = match rng.below(8) {
                        0 => 0,
                        1 => span - 1,
                        _ => rng.below(span),
                    };
                    self.start + off as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    let off = match (span, rng.below(8)) {
                        (0, _) => rng.next_u64(), // full u64 domain
                        (_, 0) => 0,
                        (_, 1) => span - 1,
                        (s, _) => rng.below(s),
                    };
                    lo.wrapping_add(off as $t)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi_exclusive, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = match rng.below(8) {
                0 => self.size.lo,
                1 => self.size.hi_exclusive - 1,
                _ => self.size.lo + rng.below(span) as usize,
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn` inside becomes a `#[test]` that runs
/// the body against `cases` deterministic samples of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            // Assumption not met; skip this case.
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(reason),
                        ) => {
                            panic!(
                                "property {} failed at deterministic case {}: {}",
                                stringify!($name),
                                case,
                                reason
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?}): {}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?}): {}",
            stringify!($left),
            stringify!($right),
            l,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_lengths_in_bounds() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = Strategy::sample(&collection::vec(0u8..10, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn endpoints_are_exercised() {
        let mut rng = TestRng::from_seed(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..200 {
            match Strategy::sample(&(10u32..20), &mut rng) {
                10 => lo_seen = true,
                19 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The macro itself works end to end, including tuple and vec
        /// strategies and early Err returns.
        fn self_test(
            (a, b) in (0u64..100, 1u64..50),
            v in collection::vec(any::<u8>(), 1..10),
        ) {
            prop_assert!(a < 100);
            prop_assert!((1..50).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(b, 0);
            if a == u64::MAX {
                return Err(TestCaseError::fail("unreachable"));
            }
        }
    }
}
