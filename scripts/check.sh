#!/usr/bin/env bash
# Repo health check: build, test, compile the benches, run the
# determinism gates (static lint + runtime divergence self-check), and
# prove the run-batched hot path did not perturb simulated results (the
# committed figure goldens must regenerate bit-identically).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (criterion harness compiles; gated offline)"
cargo bench --no-run -p nesc-bench

echo "==> nesc-lint: determinism/invariant rules (D1-D5, A1-A3)"
if ! cargo run --release -q -p nesc-lint; then
    echo "FAIL: nesc-lint found determinism-rule violations (rule ids above);" >&2
    echo "      fix them or add a justified 'nesc-lint::allow(Dx): <why>' directive" >&2
    exit 1
fi

echo "==> divergence self-check: same-seed double run must be identical"
if ! cargo run --release -q -p nesc-bench --bin divergence_check; then
    echo "FAIL: the simulator diverged between two same-seed runs;" >&2
    echo "      the first diverging event is reported above" >&2
    exit 1
fi

echo "==> golden check: fig10_bandwidth must be bit-identical"
golden="results/fig10_bandwidth.json"
[ -f "$golden" ] || { echo "missing golden $golden" >&2; exit 1; }
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cp "$golden" "$tmp/golden.json"
cargo run --release -q -p nesc-bench --bin fig10_bandwidth >/dev/null
if cmp -s "$tmp/golden.json" "$golden"; then
    echo "OK: fig10_bandwidth.json regenerated bit-identical"
else
    echo "FAIL: fig10_bandwidth.json changed after regeneration" >&2
    diff "$tmp/golden.json" "$golden" >&2 || true
    exit 1
fi

echo "==> golden check: the span trace must be bit-identical"
trace_golden="results/golden_trace.json"
[ -f "$trace_golden" ] || { echo "missing golden $trace_golden" >&2; exit 1; }
cp "$trace_golden" "$tmp/golden_trace.json"
cargo run --release -q -p nesc-bench --bin golden_trace >/dev/null
if cmp -s "$tmp/golden_trace.json" "$trace_golden"; then
    echo "OK: golden_trace.json regenerated bit-identical"
else
    echo "FAIL: golden_trace.json changed after regeneration" >&2
    diff "$tmp/golden_trace.json" "$trace_golden" >&2 || true
    exit 1
fi

echo "==> all checks passed"
