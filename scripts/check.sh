#!/usr/bin/env bash
# Repo health check: build, test, compile the benches, run the
# determinism + address-provenance gates (static lint, with an injected-
# violation self-test, + runtime divergence self-check), and prove the
# run-batched hot path did not perturb simulated results (the committed
# figure goldens must regenerate bit-identically).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (criterion harness compiles; gated offline)"
cargo bench --no-run -p nesc-bench

echo "==> nesc-lint: determinism + address-provenance rules (D1-D6, T1-T3, A1-A3)"
if ! cargo run --release -q -p nesc-lint; then
    echo "FAIL: nesc-lint found rule violations (rule ids above);" >&2
    echo "      fix them or add a justified 'nesc-lint::allow(Dx|Tx): <why>' directive" >&2
    exit 1
fi

echo "==> nesc-lint self-test: an injected T2 violation must fail the gate"
# The provenance pass runs before the golden comparisons; prove it is
# actually armed by linting a file that unwraps a vLBA outside a
# boundary module and demanding a non-zero exit.
inject="crates/core/src/nesc_lint_selftest_injected.rs"
trap 'rm -f "$inject"' EXIT
printf 'pub fn leak(vlba: Vlba) -> u64 {\n    vlba.0\n}\n' > "$inject"
if cargo run --release -q -p nesc-lint -- "$inject" >/dev/null 2>&1; then
    rm -f "$inject"
    echo "FAIL: nesc-lint passed a file with a known T2 violation —" >&2
    echo "      the provenance pass is not armed" >&2
    exit 1
fi
rm -f "$inject"
echo "OK: injected violation rejected"

echo "==> divergence self-check: same-seed double run must be identical"
if ! cargo run --release -q -p nesc-bench --bin divergence_check; then
    echo "FAIL: the simulator diverged between two same-seed runs;" >&2
    echo "      the first diverging event is reported above" >&2
    exit 1
fi

echo "==> golden check: nesc-report telemetry must be bit-identical"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
tel_golden="results/telemetry_mixed.json"
[ -f "$tel_golden" ] || { echo "missing golden $tel_golden" >&2; exit 1; }
cp "$tel_golden" "$tmp/telemetry_mixed.json"
cargo run --release -q -p nesc-bench --bin nesc_report >/dev/null
if cmp -s "$tmp/telemetry_mixed.json" "$tel_golden"; then
    echo "OK: telemetry_mixed.json regenerated bit-identical (watchdog anomaly fired)"
else
    echo "FAIL: telemetry_mixed.json changed after regeneration" >&2
    diff "$tmp/telemetry_mixed.json" "$tel_golden" >&2 || true
    exit 1
fi

echo "==> golden check: fig10_bandwidth must be bit-identical"
golden="results/fig10_bandwidth.json"
[ -f "$golden" ] || { echo "missing golden $golden" >&2; exit 1; }
cp "$golden" "$tmp/golden.json"
cargo run --release -q -p nesc-bench --bin fig10_bandwidth >/dev/null
if cmp -s "$tmp/golden.json" "$golden"; then
    echo "OK: fig10_bandwidth.json regenerated bit-identical"
else
    echo "FAIL: fig10_bandwidth.json changed after regeneration" >&2
    diff "$tmp/golden.json" "$golden" >&2 || true
    exit 1
fi

echo "==> golden check: the span trace must be bit-identical"
trace_golden="results/golden_trace.json"
[ -f "$trace_golden" ] || { echo "missing golden $trace_golden" >&2; exit 1; }
cp "$trace_golden" "$tmp/golden_trace.json"
cargo run --release -q -p nesc-bench --bin golden_trace >/dev/null
if cmp -s "$tmp/golden_trace.json" "$trace_golden"; then
    echo "OK: golden_trace.json regenerated bit-identical"
else
    echo "FAIL: golden_trace.json changed after regeneration" >&2
    diff "$tmp/golden_trace.json" "$trace_golden" >&2 || true
    exit 1
fi

echo "==> all checks passed"
