#!/usr/bin/env bash
# Repo health check: build, test, compile the benches, run the
# determinism + address-provenance + panic-freedom + layering gates
# (static lint, with injected-violation self-tests for both the
# provenance and call-graph passes, + runtime divergence self-check),
# and prove the refactors did not perturb simulated results (the
# committed figure goldens must regenerate bit-identically).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (criterion harness compiles; gated offline)"
cargo bench --no-run -p nesc-bench

echo "==> nesc-lint: determinism + provenance + guest-taint + panic-freedom + layering rules"
echo "    (D1-D7, T1-T3, G1-G3, A1-A3, P1-P3, L1)"
# The JSON report — every diagnostic including directive-suppressed ones,
# plus the size of the conservative data-path reachable set — is kept as
# results/lint.json so CI can publish it as an auditable artifact.
mkdir -p results
if ! cargo run --release -q -p nesc-lint -- --format json > results/lint.json; then
    cargo run --release -q -p nesc-lint || true
    echo "FAIL: nesc-lint found rule violations (rule ids above);" >&2
    echo "      fix them or add a justified 'nesc-lint::allow(<rule>): <why>' directive" >&2
    exit 1
fi
reachable=$(python3 -c 'import json; print(json.load(open("results/lint.json"))["reachable_functions"])')
echo "OK: workspace lint-clean (results/lint.json written; ${reachable} data-path fns tracked)"

echo "==> nesc-lint self-test: an injected T2 violation must fail the gate"
# The provenance pass runs before the golden comparisons; prove it is
# actually armed by linting a file that unwraps a vLBA outside a
# boundary module and demanding a non-zero exit.
inject="crates/core/src/nesc_lint_selftest_injected.rs"
trap 'rm -f "$inject"' EXIT
printf 'pub fn leak(vlba: Vlba) -> u64 {\n    vlba.0\n}\n' > "$inject"
if cargo run --release -q -p nesc-lint -- "$inject" >/dev/null 2>&1; then
    rm -f "$inject"
    echo "FAIL: nesc-lint passed a file with a known T2 violation —" >&2
    echo "      the provenance pass is not armed" >&2
    exit 1
fi
rm -f "$inject"
echo "OK: injected violation rejected"

echo "==> nesc-lint self-test: an injected P1 violation must fail the gate"
# Same idea for the panic-freedom pass: a scratch file that defines a
# data-path entry point and unwraps on it must be rejected, proving the
# call-graph analyzer arms itself on explicit path arguments too.
printf 'pub fn process_vf_request(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n' > "$inject"
if cargo run --release -q -p nesc-lint -- "$inject" >/dev/null 2>&1; then
    rm -f "$inject"
    echo "FAIL: nesc-lint passed a file that unwraps on the data path —" >&2
    echo "      the panic-freedom pass is not armed" >&2
    exit 1
fi
rm -f "$inject"
echo "OK: injected P1 violation rejected"

echo "==> nesc-lint self-test: an injected G3 taint violation must fail the gate"
# And for the guest-taint pass: a scratch file where a guest-input source
# feeds the translation walk with no validator on the path must be
# rejected, proving the interprocedural taint analysis is armed.
printf '%s\n' \
    '// nesc-lint: guest-input' \
    'fn guest_slba() -> Untrusted<u64> {' \
    '    Untrusted::new(9)' \
    '}' \
    'pub fn process_vf_request(mem: &HostMemory, root: u64) -> u64 {' \
    '    let slba = guest_slba();' \
    '    walk_run(mem, root, slba, 1)' \
    '}' > "$inject"
if cargo run --release -q -p nesc-lint -- "$inject" >/dev/null 2>&1; then
    rm -f "$inject"
    echo "FAIL: nesc-lint passed a file where guest input reaches the walk —" >&2
    echo "      the guest-taint pass is not armed" >&2
    exit 1
fi
rm -f "$inject"
echo "OK: injected G3 violation rejected"

echo "==> divergence self-check: same-seed double run must be identical"
if ! cargo run --release -q -p nesc-bench --bin divergence_check; then
    echo "FAIL: the simulator diverged between two same-seed runs;" >&2
    echo "      the first diverging event is reported above" >&2
    exit 1
fi

echo "==> golden check: nesc-report telemetry must be bit-identical"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
tel_golden="results/telemetry_mixed.json"
[ -f "$tel_golden" ] || { echo "missing golden $tel_golden" >&2; exit 1; }
cp "$tel_golden" "$tmp/telemetry_mixed.json"
cargo run --release -q -p nesc-bench --bin nesc_report >/dev/null
if cmp -s "$tmp/telemetry_mixed.json" "$tel_golden"; then
    echo "OK: telemetry_mixed.json regenerated bit-identical (watchdog anomaly fired)"
else
    echo "FAIL: telemetry_mixed.json changed after regeneration" >&2
    diff "$tmp/telemetry_mixed.json" "$tel_golden" >&2 || true
    exit 1
fi

echo "==> golden check: the forensic dump must be bit-identical"
# The forensics harness replays the watchdog-tripping prune-pressure
# scenario twice in-process (asserting the two dumps byte-identical),
# verifies the worst request's event-derived latency breakdown against
# its span tree phase by phase, and regenerates the dump golden plus the
# merged Perfetto trace.
forensic_golden="results/forensic_dump.json"
[ -f "$forensic_golden" ] || { echo "missing golden $forensic_golden" >&2; exit 1; }
cp "$forensic_golden" "$tmp/forensic_dump.json"
cargo run --release -q -p nesc-bench --bin forensics >/dev/null
if cmp -s "$tmp/forensic_dump.json" "$forensic_golden"; then
    echo "OK: forensic_dump.json regenerated bit-identical (anomaly dump is deterministic)"
else
    echo "FAIL: forensic_dump.json changed after regeneration" >&2
    diff "$tmp/forensic_dump.json" "$forensic_golden" >&2 || true
    exit 1
fi

echo "==> nesc-inspect: worst-request breakdown must match its span tree"
# `why` exits non-zero if the latency breakdown reconstructed from ring
# events disagrees with the one derived from the exemplar's span tree.
if ! cargo run --release -q -p nesc-bench --bin nesc-inspect -- why >/dev/null; then
    echo "FAIL: nesc-inspect why found an event/span breakdown mismatch" >&2
    exit 1
fi
echo "OK: event-derived breakdown matches the span-derived one"

echo "==> golden check: fig10_bandwidth must be bit-identical"
golden="results/fig10_bandwidth.json"
[ -f "$golden" ] || { echo "missing golden $golden" >&2; exit 1; }
cp "$golden" "$tmp/golden.json"
cargo run --release -q -p nesc-bench --bin fig10_bandwidth >/dev/null
if cmp -s "$tmp/golden.json" "$golden"; then
    echo "OK: fig10_bandwidth.json regenerated bit-identical"
else
    echo "FAIL: fig10_bandwidth.json changed after regeneration" >&2
    diff "$tmp/golden.json" "$golden" >&2 || true
    exit 1
fi

echo "==> golden check: the span trace must be bit-identical"
trace_golden="results/golden_trace.json"
[ -f "$trace_golden" ] || { echo "missing golden $trace_golden" >&2; exit 1; }
cp "$trace_golden" "$tmp/golden_trace.json"
cargo run --release -q -p nesc-bench --bin golden_trace >/dev/null
if cmp -s "$tmp/golden_trace.json" "$trace_golden"; then
    echo "OK: golden_trace.json regenerated bit-identical"
else
    echo "FAIL: golden_trace.json changed after regeneration" >&2
    diff "$tmp/golden_trace.json" "$trace_golden" >&2 || true
    exit 1
fi

echo "==> scale-out gate: 1000-VF mixed scenario must replay bit-identical, fast"
# The full datacenter mix (850 steady + 100 bursty + 50 noisy VFs) must
# (a) regenerate its fairness golden byte-for-byte and (b) finish in
# seconds of host time — the acceptance bar for the scenario engine.
#   NESC_GATE_SCALE_SECS — host wall-clock ceiling (env-overridable for
#                          slower CI hosts)
scale_golden="results/scale_mixed.json"
[ -f "$scale_golden" ] || { echo "missing golden $scale_golden" >&2; exit 1; }
cp "$scale_golden" "$tmp/scale_mixed.json"
scale_start=$SECONDS
cargo run --release -q -p nesc-bench --bin scale_out >/dev/null
scale_secs=$((SECONDS - scale_start))
scale_ceiling="${NESC_GATE_SCALE_SECS:-120}"
if cmp -s "$tmp/scale_mixed.json" "$scale_golden"; then
    echo "OK: scale_mixed.json regenerated bit-identical (${scale_secs}s host)"
else
    echo "FAIL: scale_mixed.json changed after regeneration" >&2
    diff "$tmp/scale_mixed.json" "$scale_golden" >&2 || true
    exit 1
fi
if [ "$scale_secs" -gt "$scale_ceiling" ]; then
    echo "FAIL: 1000-VF scenario took ${scale_secs}s > ceiling ${scale_ceiling}s" >&2
    exit 1
fi

echo "==> throughput gate: hot-path blocks/sec floor (interleaved A/B, min of 5)"
# The harness itself interleaves per-block/batched repeats and keeps each
# mode's minimum, so one invocation here is already noise-dodged. Floors
# are env-overridable for slower CI hosts.
#   NESC_GATE_NS_PER_BLOCK  — batched ns/block ceiling on seq-64k/btlb8
#                             (12.5 == the >= 25% improvement over the
#                             16.653 ns/block BinaryHeap-era baseline,
#                             == a floor of 80M simulated blocks/sec)
#   NESC_GATE_SPEEDUP       — batched/per-block floor on every btlb>0 series
# btlb=0 series execute identical code in both modes (run cap clamps to 1),
# so they are checked only for parity within noise (>= 0.95).
cargo run --release -q -p nesc-bench --bin bench_hotpath >/dev/null
NESC_GATE_NS_PER_BLOCK="${NESC_GATE_NS_PER_BLOCK:-12.5}" \
NESC_GATE_SPEEDUP="${NESC_GATE_SPEEDUP:-1.2}" \
python3 - <<'PY'
import json, os, sys
data = json.load(open("results/BENCH_hotpath.json"))
ns_ceiling = float(os.environ["NESC_GATE_NS_PER_BLOCK"])
speedup_floor = float(os.environ["NESC_GATE_SPEEDUP"])
fail = []
for s in data["series"]:
    key = f"btlb{s['btlb_entries']}/{s['stream']}/{s['request']}"
    floor = speedup_floor if s["btlb_entries"] > 0 else 0.95
    if s["speedup"] < floor:
        fail.append(f"{key}: speedup {s['speedup']:.2f} < floor {floor}")
    if s["btlb_entries"] == 8 and s["stream"] == "seq" and s["request"] == "64k":
        ns = s["batched_ns_per_block"]
        if ns > ns_ceiling:
            fail.append(f"{key}: batched {ns:.2f} ns/block > ceiling {ns_ceiling}")
        else:
            print(f"OK: seq-64k/btlb8 batched {ns:.2f} ns/block "
                  f"({1e9 / ns / 1e6:.0f}M blocks/sec, ceiling {ns_ceiling} ns)")
if fail:
    print("FAIL: hot-path throughput gate:\n  " + "\n  ".join(fail), file=sys.stderr)
    sys.exit(1)
print("OK: all series within speedup floors")
PY

echo "==> telemetry gate: sampler + flight-recorder overhead ceilings at the 50 us interval"
#   NESC_GATE_TELEMETRY_PCT — max % host overhead with telemetry on at 50 us
#   NESC_GATE_FLIGHT_PCT    — max % marginal cost of the flight recorder
#                             over telemetry alone at the same interval
# The harness interleaves 200 short rounds per mode and compares
# quiet-decile costs, but a busy host can still poison one measurement;
# one full re-measurement is allowed before the gate fails.
for attempt in 1 2; do
    cargo run --release -q -p nesc-bench --bin telemetry_overhead >/dev/null
    if NESC_GATE_TELEMETRY_PCT="${NESC_GATE_TELEMETRY_PCT:-20}" \
       NESC_GATE_FLIGHT_PCT="${NESC_GATE_FLIGHT_PCT:-5}" \
       python3 - <<'PY'
import json, os, sys
data = json.load(open("results/BENCH_telemetry.json"))
tel_ceiling = float(os.environ["NESC_GATE_TELEMETRY_PCT"])
fl_ceiling = float(os.environ["NESC_GATE_FLIGHT_PCT"])
tel = data["overhead_50us_percent"]
fl = data["overhead_flight_percent"]
fail = []
if tel > tel_ceiling:
    fail.append(f"telemetry overhead at 50 us is {tel:.1f}% > ceiling {tel_ceiling}%")
if fl > fl_ceiling:
    fail.append(f"flight recorder marginal cost is {fl:.1f}% > ceiling {fl_ceiling}%")
if fail:
    print("FAIL: " + "; ".join(fail), file=sys.stderr)
    sys.exit(1)
print(f"OK: telemetry overhead {tel:.1f}% (ceiling {tel_ceiling}%), "
      f"flight recorder marginal {fl:.1f}% (ceiling {fl_ceiling}%)")
PY
    then
        break
    elif [ "$attempt" -eq 2 ]; then
        echo "FAIL: overhead gate failed on both measurements" >&2
        exit 1
    else
        echo "    overhead gate missed once; re-measuring (noisy host?)"
    fi
done

echo "==> all checks passed"
