//! Quickstart: export a file as a directly-assigned NeSC virtual disk and
//! compare it with virtio — the paper's core pitch in ~60 lines.
//!
//! ```text
//! cargo run -p nesc-examples --bin quickstart
//! ```

use nesc_hypervisor::prelude::*;

fn main() {
    // A host with a NeSC controller (the paper's VC707 prototype config)
    // and the calibrated software-stack cost model.
    let mut sys = SystemBuilder::new().build();

    // The hypervisor creates an image file on its own filesystem and
    // exports it to a VM as a *directly assigned* NeSC virtual function:
    // the device itself translates the VM's block addresses through the
    // file's extent tree, so no hypervisor software touches the data path.
    let vm = sys.create_vm();
    let image = sys
        .create_image("guest-disk.img", 64 << 20, true)
        .expect("space for the image");
    let nesc_disk = sys.attach(vm, DiskKind::NescDirect, Some(image));

    // The same image served through paravirtual virtio, for contrast.
    let vm2 = sys.create_vm();
    let image2 = sys
        .create_image("guest-disk-virtio.img", 64 << 20, true)
        .expect("space for the image");
    let virtio_disk = sys.attach(vm2, DiskKind::Virtio, Some(image2));

    // Guest I/O: write 4 KiB, read it back, on both paths.
    let payload = vec![0xC0u8; 4096];
    let mut readback = vec![0u8; 4096];

    let nesc_write = sys.write(nesc_disk, 0, &payload);
    let nesc_read = sys.read(nesc_disk, 0, &mut readback);
    assert_eq!(readback, payload, "NeSC round-trip");

    let virtio_write = sys.write(virtio_disk, 0, &payload);
    let virtio_read = sys.read(virtio_disk, 0, &mut readback);
    assert_eq!(readback, payload, "virtio round-trip");

    println!("4 KiB guest I/O latency:");
    println!("  NeSC VF  : write {nesc_write}, read {nesc_read}");
    println!("  virtio   : write {virtio_write}, read {virtio_read}");
    println!(
        "  speedup  : write {:.1}x, read {:.1}x  (paper: ~6x for small blocks)",
        virtio_write.as_micros_f64() / nesc_write.as_micros_f64(),
        virtio_read.as_micros_f64() / nesc_read.as_micros_f64(),
    );

    // The device's view of what just happened.
    let stats = sys.device().stats();
    println!(
        "\ndevice: {} requests completed, {} blocks written, {} blocks read, \
         {} extent-tree walks, BTLB hit rate {:.0}%",
        stats.requests_completed,
        stats.blocks_written,
        stats.blocks_read,
        stats.walks,
        sys.device().btlb().hit_rate() * 100.0
    );
}
