//! NVMe over NeSC: namespaces as hardware-isolated files.
//!
//! The paper observes that NVMe "does not specify how address spaces are
//! defined, how they are maintained, and what they represent — NeSC
//! therefore complements the abstract NVMe address spaces" (§III). Here a
//! driver talks real encoded submission/completion rings (64 B SQEs,
//! 16 B CQEs, phase bits, doorbells) while each namespace is a NeSC
//! virtual function confined to one file's extent tree.
//!
//! ```text
//! cargo run -p nesc-examples --bin nvme_namespaces
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use nesc_core::NescConfig;
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_nvme::{NvmeController, NvmeOpcode, SubmissionEntry};
use nesc_pcie::HostMemory;
use nesc_sim::SimTime;

fn main() {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut ctrl = NvmeController::new(NescConfig::prototype(), Rc::clone(&mem));

    // Two namespaces = two files, physically disjoint.
    let mk_ns = |ctrl: &mut NvmeController, mem: &Rc<RefCell<HostMemory>>, base: u64| {
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(base), 256)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        ctrl.create_namespace(root, 256).expect("VF slot")
    };
    let ns_db = mk_ns(&mut ctrl, &mem, 1_000);
    let ns_log = mk_ns(&mut ctrl, &mem, 10_000);
    println!(
        "namespaces: {} ({:?}) and {} ({:?})",
        ns_db,
        ctrl.identify(ns_db).unwrap().func,
        ns_log,
        ctrl.identify(ns_log).unwrap().func
    );

    let qid = ctrl.create_queue_pair(16);

    // A batch of commands across both namespaces, one doorbell.
    let dbuf = mem.borrow_mut().alloc(16 * 1024, 4096);
    let lbuf = mem.borrow_mut().alloc(4 * 1024, 4096);
    mem.borrow_mut().write(dbuf, &vec![0xDB; 16 * 1024]);
    mem.borrow_mut().write(lbuf, &vec![0x10; 4 * 1024]);
    let batch = [
        // 16 blocks, NVMe 0-based
        SubmissionEntry::new(NvmeOpcode::Write, 1, ns_db, dbuf, Vlba(0), 15),
        SubmissionEntry::new(NvmeOpcode::Write, 2, ns_log, lbuf, Vlba(0), 3),
        SubmissionEntry::new(NvmeOpcode::Flush, 3, ns_log, 0, Vlba(0), 0),
    ];
    let done = ctrl
        .submit_and_process(SimTime::ZERO, qid, &batch)
        .expect("queue sized for the batch");
    for (cqe, at) in &done {
        println!("  cid {} -> {:?} at {at}", cqe.cid, cqe.status);
    }

    // Verify placement: namespace writes landed on *their* files' blocks.
    assert_eq!(
        ctrl.device().store().read_block(Plba(1_000)).unwrap(),
        vec![0xDB; 1024]
    );
    assert_eq!(
        ctrl.device().store().read_block(Plba(10_000)).unwrap(),
        vec![0x10; 1024]
    );
    println!("\nisolation: each namespace's writes landed only on its own file's blocks");
    println!(
        "device stats: {} requests, {} walks, BTLB hit rate {:.0}%",
        ctrl.device().stats().requests_completed,
        ctrl.device().stats().walks,
        ctrl.device().btlb().hit_rate() * 100.0
    );
}
