//! Accelerator-direct storage: a PCIe accelerator (GPGPU/FPGA) pulls file
//! data straight out of a NeSC virtual function with peer-to-peer DMA —
//! the extension of paper §IV-D — versus the traditional host-mediated
//! path.
//!
//! ```text
//! cargo run -p nesc-examples --bin accelerator_direct
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use nesc_accel::{Accelerator, HostMediated};
use nesc_core::{NescConfig, NescDevice};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::SimTime;

fn main() {
    // System address space + NeSC device.
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut dev = NescDevice::new(NescConfig::prototype(), Rc::clone(&mem));

    // The hypervisor exports a dataset file (pLBA 5000.., 4 MiB) to the
    // accelerator as a VF: offset 0 of the VF is offset 0 of the file.
    let file_blocks = 4096;
    let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(5000), file_blocks)]
        .into_iter()
        .collect();
    let root = tree.serialize(&mut mem.borrow_mut());
    let vf = dev.create_vf(root, file_blocks).expect("VF slot");

    // Seed the dataset on the device.
    for b in 0..file_blocks {
        dev.store_mut()
            .write_block(Plba(5000 + b), &vec![(b % 251) as u8; 1024])
            .expect("in capacity");
    }

    // The accelerator: 16 MiB of BAR-mapped local memory.
    let window = mem.borrow_mut().alloc(16 << 20, 4096);
    let mut acc = Accelerator::new(window, 16 << 20);

    // Direct path: the accelerator fetches 1 MiB of the dataset itself.
    let t_direct = acc
        .fetch_direct(SimTime::ZERO, &mut dev, vf, 0, 1 << 20, 0)
        .expect("fetch");
    // Verify the bytes actually landed in accelerator memory.
    let probe = mem.borrow().read_vec(window + 7 * 1024, 4);
    assert!(probe.iter().all(|&b| b == 7));

    // Host-mediated baseline on a fresh device (so timelines are clean).
    let mem2 = Rc::new(RefCell::new(HostMemory::new()));
    let mut dev2 = NescDevice::new(NescConfig::prototype(), Rc::clone(&mem2));
    let staging = mem2.borrow_mut().alloc(16 << 20, 4096);
    let mut host = HostMediated::new();
    let t_host = host.fetch_via_host(SimTime::ZERO, &mut dev2, staging, Plba(5000), 1 << 20);

    println!("1 MiB dataset fetch into the accelerator:");
    println!("  NeSC VF peer-to-peer DMA : {t_direct}");
    println!("  host-mediated            : {t_host}");
    println!(
        "  direct is {:.2}x faster and uses zero host CPU cycles",
        t_host.as_nanos() as f64 / t_direct.as_nanos() as f64
    );

    // The gap explodes for the small, frequent transfers accelerator
    // kernels actually make (a descriptor ring pull, an index probe):
    let t_small = acc
        .fetch_direct(t_direct, &mut dev, vf, 1 << 20, 16 * 1024, 1 << 20)
        .expect("fetch")
        .saturating_since(t_direct);
    let t_small_host = {
        // Fresh device so the measurement is not queued behind the 1 MiB
        // transfer above.
        let mem3 = Rc::new(RefCell::new(HostMemory::new()));
        let mut dev3 = NescDevice::new(NescConfig::prototype(), Rc::clone(&mem3));
        let staging3 = mem3.borrow_mut().alloc(1 << 20, 4096);
        let mut host2 = HostMediated::new();
        host2
            .fetch_via_host(SimTime::ZERO, &mut dev3, staging3, Plba(6024), 16 * 1024)
            .saturating_since(SimTime::ZERO)
    };
    println!(
        "
16 KiB fetch (latency-sensitive kernel access):"
    );
    println!("  direct {t_small} vs host-mediated {t_small_host}");
    println!(
        "  direct is {:.1}x faster",
        t_small_host.as_nanos() as f64 / t_small.as_nanos() as f64
    );

    // And writing results back is just as direct.
    mem.borrow_mut()
        .write(window + (2 << 20), &vec![0xEE; 64 * 1024]);
    acc.flush_direct(t_direct, &mut dev, vf, 2 << 20, 64 * 1024, 2 << 20)
        .expect("flush");
    assert_eq!(
        dev.store().read_block(Plba(5000 + 2048)).expect("mapped"),
        vec![0xEE; 1024]
    );
    println!(
        "\nresults written back through the same VF ({} transfers, {} KiB total)",
        acc.transfers(),
        acc.bytes_moved() / 1024
    );
}
