//! Sparse virtual disks and the miss-interrupt dance.
//!
//! NeSC lets the hypervisor export a virtual disk whose *logical* size is
//! far larger than its allocated space (lazy allocation, paper §IV-B/C).
//! This example walks the whole Fig. 5b flow visibly: a guest writes into
//! unallocated space, the device stalls the VF and interrupts the
//! hypervisor with `MissAddress`/`MissSize`, the hypervisor allocates and
//! rebuilds the extent tree, pokes `RewalkTree`, and the write completes —
//! all without the guest noticing anything but latency.
//!
//! ```text
//! cargo run -p nesc-examples --bin sparse_disks
//! ```

use nesc_hypervisor::prelude::*;
use nesc_storage::BLOCK_SIZE;

fn main() {
    let mut sys = SystemBuilder::new().build();

    // A 256 MiB *logical* disk with zero blocks allocated.
    let vm = sys.create_vm();
    let image = sys
        .create_image("thin.img", 256 << 20, /* prealloc = */ false)
        .expect("namespace is fresh");
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(image));
    println!(
        "thin disk: logical {} MiB, allocated {} blocks",
        256,
        sys.host_fs().extent_tree(image).unwrap().mapped_blocks()
    );

    // Reading a hole costs no allocation: the device zero-fills.
    let mut buf = vec![0xFFu8; 8192];
    let read_lat = sys.read(disk, 64 << 20, &mut buf);
    assert!(buf.iter().all(|&b| b == 0), "holes read as zeros");
    println!(
        "hole read: {} (zero-fill DMA, {} miss interrupts so far)",
        read_lat,
        sys.device().stats().miss_interrupts
    );

    // First write to unallocated space: the full miss flow runs.
    let payload = vec![0xABu8; 8192];
    let first_write = sys.write(disk, 64 << 20, &payload);
    let misses = sys.device().stats().miss_interrupts;
    println!(
        "first write: {first_write} — {misses} miss interrupt(s): the device stalled, \
         the hypervisor allocated + rebuilt the tree + signalled RewalkTree"
    );
    assert!(misses >= 1);

    // Steady-state write to the now-mapped range: no interrupts.
    let second_write = sys.write(disk, 64 << 20, &payload);
    assert_eq!(sys.device().stats().miss_interrupts, misses);
    println!(
        "second write: {second_write} — mapped, translated entirely in hardware \
         ({:.1}x faster than the allocating write)",
        first_write.as_nanos() as f64 / second_write.as_nanos() as f64
    );

    // The data really is there, and only what was touched got allocated.
    let mut check = vec![0u8; 8192];
    sys.read(disk, 64 << 20, &mut check);
    assert_eq!(check, payload);
    let allocated = sys.host_fs().extent_tree(image).unwrap().mapped_blocks();
    println!(
        "backing file now maps {} blocks ({} KiB) of the 256 MiB logical disk",
        allocated,
        allocated * BLOCK_SIZE / 1024
    );
}
