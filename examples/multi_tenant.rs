//! Multi-tenant consolidation: eight VMs share one NeSC device, each
//! directly assigned its own virtual function over its own image file.
//!
//! Demonstrates the two properties direct device assignment alone cannot
//! give you (paper §II): *sharing* (64 VFs on one controller) and
//! *isolation* (each VF is confined to its file by the hardware-walked
//! extent tree — no tenant ever observes another's bytes).
//!
//! ```text
//! cargo run -p nesc-examples --bin multi_tenant
//! ```

use nesc_hypervisor::prelude::*;

const TENANTS: usize = 8;
const DISK_BYTES: u64 = 16 << 20;

fn main() {
    let mut sys = SystemBuilder::new().build();

    // Provision one VM + image + VF per tenant.
    let tenants: Vec<(VmId, DiskId)> = (0..TENANTS)
        .map(|i| {
            let vm = sys.create_vm();
            let image = sys
                .create_image(&format!("tenant{i}.img"), DISK_BYTES, true)
                .expect("device has space");
            (vm, sys.attach(vm, DiskKind::NescDirect, Some(image)))
        })
        .collect();
    println!(
        "{} tenants on one device ({} live VFs)",
        TENANTS,
        sys.device().live_vfs()
    );

    // Every tenant writes its own signature pattern over its first MiB.
    for (i, &(_, disk)) in tenants.iter().enumerate() {
        let pattern = vec![0x10 + i as u8; 1 << 20];
        sys.write(disk, 0, &pattern);
    }

    // Isolation check: each tenant reads back only its own signature.
    for (i, &(_, disk)) in tenants.iter().enumerate() {
        let mut buf = vec![0u8; 1 << 20];
        sys.read(disk, 0, &mut buf);
        assert!(
            buf.iter().all(|&b| b == 0x10 + i as u8),
            "tenant {i} observed foreign bytes!"
        );
    }
    println!("isolation: every tenant read back exactly its own data");

    // All tenants stream *concurrently* (closed-loop 64 KiB reads): the
    // round-robin multiplexer shares the one device evenly among them.
    let specs: Vec<StreamSpec> = tenants
        .iter()
        .map(|&(_, disk)| StreamSpec {
            disk,
            op: BlockOp::Read,
            start_offset: 0,
            req_bytes: 64 * 1024,
            count: 64,
        })
        .collect();
    let results = sys.run_mixed(&specs);
    let per_tenant: Vec<f64> = results.iter().map(|r| r.mbps).collect();
    let min = per_tenant.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_tenant.iter().cloned().fold(0.0, f64::max);
    let aggregate: f64 = per_tenant.iter().sum();
    println!(
        "concurrent streaming: per-tenant {min:.0}..{max:.0} MB/s, \
         aggregate {aggregate:.0} MB/s (one shared ~800 MB/s device)"
    );

    // Per-function service accounting straight from the device.
    println!("\nper-VF service counters (requests, blocks):");
    for (i, &(_, disk)) in tenants.iter().enumerate() {
        let vf = sys.disk_vf(disk).expect("direct disk has a VF");
        let (reqs, blocks) = sys.device().function_counters(vf);
        println!("  tenant {i} ({vf}): {reqs} requests, {blocks} blocks");
    }
    let stats = sys.device().stats();
    println!(
        "device totals: {} requests, {} MB read, BTLB hit rate {:.0}%",
        stats.requests_completed,
        stats.blocks_read / 1000,
        sys.device().btlb().hit_rate() * 100.0
    );
}
