//! Golden images: extent-tree sharing and block deduplication.
//!
//! Two NeSC mechanisms make many-VM fleets cheap to store (paper §IV-B and
//! §IV-D):
//!
//! 1. **Shared extent trees** — "the design also enables multiple VFs to
//!    share an extent tree and thereby files": here, many read-only VFs
//!    mount the same golden image through one tree.
//! 2. **Deduplication** — per-tenant clones that drifted from the golden
//!    image are collapsed back onto shared physical blocks; the hypervisor
//!    rebuilds the trees and flushes the device BTLB "to preserve
//!    meta-data consistency".
//!
//! ```text
//! cargo run -p nesc-examples --bin golden_snapshot
//! ```

use nesc_hypervisor::prelude::*;
use nesc_storage::BLOCK_SIZE;

fn main() {
    let mut sys = SystemBuilder::new().build();

    // --- Part 1: one golden image, three read-only VFs sharing its tree.
    let owner_disk = sys
        .quick_disk(DiskKind::NescDirect, "golden.img", 8 << 20)
        .disk;
    let golden: Vec<u8> = (0..2 << 20u32).map(|i| (i * 7 % 253) as u8).collect();
    sys.write(owner_disk, 0, &golden);

    // Additional VFs bound to the *same* extent tree root.
    let image = sys.disk_image(owner_disk).expect("file-backed");
    let root = {
        let tree = sys.host_fs().extent_tree(image).expect("image").clone();
        tree.serialize(&mut sys.memory().borrow_mut())
    };
    let size_blocks = sys.disk_size_blocks(owner_disk);
    let readers: Vec<_> = (0..3)
        .map(|_| {
            sys.device_mut()
                .create_vf(root, size_blocks)
                .expect("VF slot")
        })
        .collect();
    println!(
        "golden image shared by {} extra VFs through one extent tree",
        readers.len()
    );
    println!(
        "(device now has {} live VFs; consistency of shared *data* is the \
         clients' business — NeSC only guarantees the tree, §IV-B)",
        sys.device().live_vfs()
    );

    // --- Part 2: tenant clones + dedup.
    let clone_a = sys
        .quick_disk(DiskKind::NescDirect, "clone_a.img", 8 << 20)
        .disk;
    let clone_b = sys
        .quick_disk(DiskKind::NescDirect, "clone_b.img", 8 << 20)
        .disk;
    sys.write(clone_a, 0, &golden);
    sys.write(clone_b, 0, &golden);
    // Each clone diverges a little.
    sys.write(clone_a, 0, &vec![0xA1; 4096]);
    sys.write(clone_b, 512 * 1024, &vec![0xB2; 4096]);

    let free_before = sys.host_fs().free_blocks();
    let report = sys.dedup_images(&[owner_disk, clone_a, clone_b]);
    let free_after = sys.host_fs().free_blocks();
    println!(
        "\ndedup: scanned {} blocks, deduped {}, freed {} ({} KiB reclaimed)",
        report.scanned_blocks,
        report.deduped_blocks,
        report.freed_blocks,
        (free_after - free_before) * BLOCK_SIZE / 1024
    );

    // Every clone still reads its own (diverged) content correctly.
    let mut buf = vec![0u8; 4096];
    sys.read(clone_a, 0, &mut buf);
    assert!(
        buf.iter().all(|&b| b == 0xA1),
        "clone A's divergence survives"
    );
    sys.read(clone_b, 512 * 1024, &mut buf);
    assert!(
        buf.iter().all(|&b| b == 0xB2),
        "clone B's divergence survives"
    );
    let mut tail = vec![0u8; 4096];
    sys.read(clone_a, 1 << 20, &mut tail);
    assert_eq!(
        &tail[..],
        &golden[1 << 20..(1 << 20) + 4096],
        "shared blocks intact"
    );
    println!("post-dedup reads: every clone sees exactly its own image");
}
