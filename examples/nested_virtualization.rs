//! Nested virtualization: an L2 guest's disk inside an L1 guest's disk,
//! both translated by the device.
//!
//! The paper notes a VF "is not allowed to create nested VFs (although,
//! in principle, such a mechanism can be implemented to support nested
//! virtualization)" (§IV-A). This example builds that mechanism's natural
//! use: an L1 guest runs its own hypervisor, stores an L2 guest's disk as
//! a *file on its own filesystem*, and exports it as a nested VF. The
//! device then composes both extent trees per block — the L2 guest gets
//! direct hardware access with isolation enforced transitively.
//!
//! ```text
//! cargo run -p nesc-examples --bin nested_virtualization
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use nesc_core::{NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_fs::Filesystem;
use nesc_pcie::HostMemory;
use nesc_sim::SimTime;
use nesc_storage::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

fn main() {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut dev = NescDevice::new(NescConfig::prototype(), Rc::clone(&mem));

    // --- L0 (host) hypervisor: exports a 64 MiB file to the L1 guest. ---
    let l1_blocks = 64 * 1024;
    let l1_tree: ExtentTree = [ExtentMapping::new(
        Vlba(0),
        nesc_extent::Plba(4096),
        l1_blocks,
    )]
    .into_iter()
    .collect();
    let l1_root = l1_tree.serialize(&mut mem.borrow_mut());
    let l1_vf = dev.create_vf(l1_root, l1_blocks).expect("VF slot");
    println!(
        "L0 host: exported a {} MiB file as {l1_vf}",
        l1_blocks / 1024
    );

    // --- L1 guest: formats its own filesystem *on its virtual disk* and
    // creates an image file for its L2 guest. (The L1 guest's filesystem
    // addresses are L1 vLBAs.) ---
    let mut l1_fs = Filesystem::format(l1_blocks);
    let l2_image = l1_fs.create("l2-guest.img").expect("fresh fs");
    l1_fs.truncate(l2_image, 8 << 20).expect("size");
    l1_fs
        .allocate_range(l2_image, Vlba(0), (8 << 20) / BLOCK_SIZE)
        .expect("space in the L1 disk");
    // The L1 hypervisor queries ITS filesystem's extent tree — mapping
    // L2-disk offsets to *L1 vLBAs* — and asks for a nested VF.
    let l2_tree = l1_fs.extent_tree(l2_image).expect("image").clone();
    let l2_root = l2_tree.serialize(&mut mem.borrow_mut());
    let l2_vf = dev
        .create_nested_vf(l1_vf, l2_root, (8 << 20) / BLOCK_SIZE)
        .expect("nested VF");
    println!(
        "L1 guest-hypervisor: exported its file 'l2-guest.img' as nested {l2_vf} ({} extents)",
        l2_tree.extent_count()
    );

    // --- L2 guest: plain block I/O on its nested VF. ---
    let buf = mem.borrow_mut().alloc(64 * 1024, 4096);
    mem.borrow_mut().write(buf, &vec![0xB2; 64 * 1024]);
    let t0 = dev.ring_doorbell(SimTime::ZERO);
    dev.submit(
        t0,
        l2_vf,
        BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(0), 64),
        buf,
    );
    let outs = dev.advance(HORIZON);
    let done = outs.iter().map(NescOutput::at).max().unwrap();
    println!(
        "L2 guest: wrote 64 KiB through two translation levels in {}",
        done.saturating_since(SimTime::ZERO)
    );

    // Verify the bytes landed where the *composition* says: L2 vLBA 0 →
    // L1 vLBA (per l1_fs extents) → pLBA 4096 + that.
    let l1_vlba = l2_tree
        .lookup(Vlba(0))
        .and_then(|e| e.translate(Vlba(0)))
        .expect("mapped")
        .0;
    let plba = 4096 + l1_vlba;
    assert_eq!(
        dev.store().read_block(Plba(plba)).expect("in range"),
        vec![0xB2; 1024]
    );
    println!("composition verified: L2 vLBA 0 -> L1 vLBA {l1_vlba} -> pLBA {plba}");

    // And confinement is transitive: the L2 guest cannot name anything
    // beyond its 8 MiB, and even a hostile L2 tree could never leave the
    // L1 file (the device bounds every intermediate address by the
    // parent's device size).
    dev.submit(
        done,
        l2_vf,
        BlockRequest::new(RequestId(2), BlockOp::Read, Vlba((8 << 20) / BLOCK_SIZE), 1),
        buf,
    );
    let outs = dev.advance(HORIZON);
    assert!(matches!(
        outs.last(),
        Some(NescOutput::Completion {
            status: nesc_core::CompletionStatus::OutOfRange,
            ..
        })
    ));
    println!("confinement: out-of-range L2 access rejected by the device");
    println!(
        "\ndevice stats: {} walks over {} levels (mean {:.1} levels/walk)",
        dev.stats().walks,
        dev.stats().walk_levels,
        dev.stats().mean_walk_depth()
    );
}
