//! Shared helpers for the cross-crate system tests.
//!
//! The integration suite exercises the whole reproduction — guest VM →
//! virtualization path → NeSC device → extent trees → host filesystem —
//! against reference models and the paper's stated guarantees.

use nesc_hypervisor::{DiskId, DiskKind, System, SystemBuilder, VmId};

/// A small, fast system for functional tests: 64 MiB device, calibrated
/// costs.
pub fn small_system() -> System {
    SystemBuilder::new().capacity_blocks(64 * 1024).build()
}

/// Builds a system with one disk of `size_bytes` on the given path.
pub fn system_with_disk(kind: DiskKind, size_bytes: u64) -> (System, VmId, DiskId) {
    let mut sys = small_system();
    let p = sys.quick_disk(kind, "test.img", size_bytes);
    (sys, p.vm, p.disk)
}

/// An in-memory reference disk for differential testing.
#[derive(Debug, Clone)]
pub struct ReferenceDisk {
    bytes: Vec<u8>,
}

impl ReferenceDisk {
    /// A zeroed reference disk.
    pub fn new(size: usize) -> Self {
        ReferenceDisk {
            bytes: vec![0; size],
        }
    }

    /// Applies a write.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Reads a range.
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        &self.bytes[offset..offset + len]
    }
}
