//! Reproducibility: every harness result must be bit-identical across
//! runs — the property that makes the figure regeneration trustworthy.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_core::{CompletionStatus, NescConfig, NescDevice, NescOutput};
use nesc_extent::{Plba, Vlba};
use nesc_hypervisor::DiskKind;
use nesc_pcie::HostMemory;
use nesc_sim::selfcheck::{first_divergence, self_check, Divergence};
use nesc_sim::SimTime;
use nesc_storage::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};
use nesc_system_tests::system_with_disk;
use nesc_workloads::{Dd, DdMode, FileIo, MixedVfSelfCheck, Oltp, Postmark, TenantIo, Workload};

#[test]
fn dd_streams_are_deterministic() {
    let run = || {
        let (mut sys, _vm, disk) = system_with_disk(DiskKind::NescDirect, 16 << 20);
        let rep = Dd::new(BlockOp::Write, 8192, 128, DdMode::Pipelined { qd: 8 })
            .run(&mut TenantIo::attached(&mut sys, disk));
        (rep.elapsed, rep.bytes, sys.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn macro_workloads_are_deterministic_on_every_path() {
    for kind in [DiskKind::NescDirect, DiskKind::Virtio, DiskKind::Emulated] {
        let run = || {
            let (mut sys, _vm, disk) = system_with_disk(kind, 32 << 20);
            let pm = Postmark {
                initial_files: 8,
                transactions: 25,
                max_file_bytes: 8 * 1024,
                ..Default::default()
            }
            .run(&mut TenantIo::attached(&mut sys, disk));
            (pm.elapsed, pm.bytes, sys.device().stats())
        };
        assert_eq!(run(), run(), "{kind:?} diverged");
    }
}

#[test]
fn oltp_device_stats_are_deterministic() {
    let run = || {
        let (mut sys, _vm, disk) = system_with_disk(DiskKind::NescDirect, 32 << 20);
        Oltp {
            rows: 2_000,
            transactions: 20,
            buffer_pool_pages: 8,
            ..Default::default()
        }
        .run(&mut TenantIo::attached(&mut sys, disk));
        sys.device().stats()
    };
    assert_eq!(run(), run());
}

#[test]
fn fileio_latency_histogram_is_deterministic() {
    let run = || {
        let (mut sys, _vm, disk) = system_with_disk(DiskKind::Virtio, 32 << 20);
        let rep = FileIo {
            files: 3,
            file_bytes: 128 * 1024,
            ops: 30,
            ..Default::default()
        }
        .run(&mut TenantIo::attached(&mut sys, disk));
        (
            rep.latency.percentile(50.0),
            rep.latency.percentile(99.0),
            rep.latency.mean().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn mixed_multivf_same_seed_digests_are_identical() {
    // The full divergence-check surface: a seeded read/write mix across
    // several VFs, digested down to event sequence + span tree + metrics
    // hashes. Two runs from one seed must agree on every checkpoint.
    let wl = MixedVfSelfCheck::default();
    let a = wl.digest(0xD15C_05ED);
    let b = wl.digest(0xD15C_05ED);
    assert_eq!(a.checkpoints(), b.checkpoints(), "checkpoint hashes differ");
    assert_eq!(a.final_hash(), b.final_hash(), "final digests differ");
    assert_eq!(
        first_divergence(&a, &b),
        None,
        "same-seed runs must not diverge"
    );
    // And the packaged double-run entry point agrees.
    assert_eq!(
        self_check(0xD15C_05ED, |s| wl.digest(s)).expect("deterministic"),
        a.final_hash()
    );
}

#[test]
fn mixed_multivf_different_seeds_report_first_divergence() {
    let wl = MixedVfSelfCheck::default();
    let d = first_divergence(&wl.digest(3), &wl.digest(4))
        .expect("different seeds must produce different event streams");
    // The report must name a concrete first diverging event, not just
    // "hashes differ".
    match &d {
        Divergence::Event { a, b, .. } => {
            assert_eq!(a.seq, b.seq, "events compared at the same index");
            assert!(a.label.starts_with("vf"), "event labels carry the VF");
        }
        Divergence::Length { next, .. } => assert!(next.label.starts_with("vf")),
        other => panic!("expected an event-level divergence, got: {other}"),
    }
    assert!(d.to_string().contains("diverg"), "report: {d}");
}

#[test]
fn mistranslated_vlba_passed_as_plba_is_caught_by_range_check() {
    // The Vlba/Plba newtypes (and lint rule T2) make "skipped the extent
    // walk" hard to write; this pins the *runtime* backstop behind them.
    // A guest block index smuggled untranslated into the PF's physical
    // space lands outside the device and must complete OutOfRange without
    // touching media — while the same index, properly translated to an
    // in-range pLBA, succeeds.
    let horizon = SimTime::from_nanos(u64::MAX / 4);
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 4096;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let buf = mem.borrow_mut().alloc(BLOCK_SIZE, 8);

    // The deliberate bug: an identity conversion stands in for the real
    // extent-walk translation of a guest address beyond PF capacity.
    let guest_vlba = Vlba(10_000);
    let smuggled = guest_vlba.identity_plba();
    dev.submit_pf(
        SimTime::ZERO,
        BlockRequest::new(RequestId(1), BlockOp::Write, smuggled, 1),
        buf,
    );
    let outs = dev.advance(horizon);
    assert!(
        matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::OutOfRange,
                ..
            })
        ),
        "untranslated guest address must be rejected, got {outs:?}"
    );

    // A genuinely translated in-range physical address sails through.
    dev.submit_pf(
        SimTime::ZERO,
        BlockRequest::new(RequestId(2), BlockOp::Write, Plba(100), 1),
        buf,
    );
    let outs = dev.advance(horizon);
    assert!(
        matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ),
        "translated request must succeed, got {outs:?}"
    );
}

#[test]
fn different_seeds_differ() {
    // Sanity check that determinism is seed-scoped, not accidental
    // constantness.
    let run = |seed| {
        let (mut sys, _vm, disk) = system_with_disk(DiskKind::NescDirect, 32 << 20);
        FileIo {
            files: 3,
            file_bytes: 128 * 1024,
            ops: 30,
            seed,
            ..Default::default()
        }
        .run(&mut TenantIo::attached(&mut sys, disk))
        .elapsed
    };
    assert_ne!(run(1), run(2));
}
