//! Reproducibility: every harness result must be bit-identical across
//! runs — the property that makes the figure regeneration trustworthy.

use nesc_hypervisor::{DiskKind, GuestFilesystem};
use nesc_storage::BlockOp;
use nesc_system_tests::system_with_disk;
use nesc_workloads::{Dd, DdMode, FileIo, Oltp, Postmark};

#[test]
fn dd_streams_are_deterministic() {
    let run = || {
        let (mut sys, _vm, disk) = system_with_disk(DiskKind::NescDirect, 16 << 20);
        let rep =
            Dd::new(BlockOp::Write, 8192, 128, DdMode::Pipelined { qd: 8 }).run(&mut sys, disk);
        (rep.elapsed, rep.bytes, sys.now())
    };
    assert_eq!(run(), run());
}

#[test]
fn macro_workloads_are_deterministic_on_every_path() {
    for kind in [DiskKind::NescDirect, DiskKind::Virtio, DiskKind::Emulated] {
        let run = || {
            let (mut sys, vm, disk) = system_with_disk(kind, 32 << 20);
            let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
            let pm = Postmark {
                initial_files: 8,
                transactions: 25,
                max_file_bytes: 8 * 1024,
                ..Default::default()
            }
            .run(&mut sys, &mut gfs);
            (pm.elapsed, pm.bytes, sys.device().stats())
        };
        assert_eq!(run(), run(), "{kind:?} diverged");
    }
}

#[test]
fn oltp_device_stats_are_deterministic() {
    let run = || {
        let (mut sys, vm, disk) = system_with_disk(DiskKind::NescDirect, 32 << 20);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        Oltp {
            rows: 2_000,
            transactions: 20,
            buffer_pool_pages: 8,
            ..Default::default()
        }
        .run_full(&mut sys, &mut gfs);
        sys.device().stats()
    };
    assert_eq!(run(), run());
}

#[test]
fn fileio_latency_histogram_is_deterministic() {
    let run = || {
        let (mut sys, vm, disk) = system_with_disk(DiskKind::Virtio, 32 << 20);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        let wl = FileIo {
            files: 3,
            file_bytes: 128 * 1024,
            ops: 30,
            ..Default::default()
        };
        let inos = wl.prepare(&mut sys, &mut gfs);
        let rep = wl.run(&mut sys, &mut gfs, &inos);
        (
            rep.latency.percentile(50.0),
            rep.latency.percentile(99.0),
            rep.latency.mean().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    // Sanity check that determinism is seed-scoped, not accidental
    // constantness.
    let run = |seed| {
        let (mut sys, vm, disk) = system_with_disk(DiskKind::NescDirect, 32 << 20);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        let wl = FileIo {
            files: 3,
            file_bytes: 128 * 1024,
            ops: 30,
            seed,
            ..Default::default()
        };
        let inos = wl.prepare(&mut sys, &mut gfs);
        wl.run(&mut sys, &mut gfs, &inos).elapsed
    };
    assert_ne!(run(1), run(2));
}
