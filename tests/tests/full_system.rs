//! Full-system data-integrity tests: every virtualization path must be a
//! faithful block device under arbitrary access patterns.

use nesc_hypervisor::DiskKind;
use nesc_storage::BLOCK_SIZE;
use nesc_system_tests::{system_with_disk, ReferenceDisk};
use proptest::prelude::*;

const DISK_BYTES: u64 = 4 << 20;

fn all_kinds() -> [DiskKind; 4] {
    [
        DiskKind::NescDirect,
        DiskKind::Virtio,
        DiskKind::Emulated,
        DiskKind::HostRaw,
    ]
}

#[test]
fn sequential_roundtrip_every_path() {
    for kind in all_kinds() {
        let (mut sys, _vm, disk) = system_with_disk(kind, DISK_BYTES);
        for i in 0..16u64 {
            let data = vec![i as u8 + 1; 16 * 1024];
            sys.write(disk, i * 16 * 1024, &data);
        }
        for i in 0..16u64 {
            let mut out = vec![0u8; 16 * 1024];
            sys.read(disk, i * 16 * 1024, &mut out);
            assert!(
                out.iter().all(|&b| b == i as u8 + 1),
                "{kind:?} corrupted chunk {i}"
            );
        }
    }
}

#[test]
fn interleaved_writes_last_writer_wins() {
    for kind in all_kinds() {
        let (mut sys, _vm, disk) = system_with_disk(kind, DISK_BYTES);
        sys.write(disk, 0, &vec![0x11; 64 * 1024]);
        sys.write(disk, 32 * 1024, &vec![0x22; 8 * 1024]);
        sys.write(disk, 34 * 1024, &vec![0x33; 1024]);
        let mut out = vec![0u8; 64 * 1024];
        sys.read(disk, 0, &mut out);
        assert!(out[..32 * 1024].iter().all(|&b| b == 0x11), "{kind:?}");
        assert!(
            out[32 * 1024..34 * 1024].iter().all(|&b| b == 0x22),
            "{kind:?}"
        );
        assert!(
            out[34 * 1024..35 * 1024].iter().all(|&b| b == 0x33),
            "{kind:?}"
        );
        assert!(
            out[35 * 1024..40 * 1024].iter().all(|&b| b == 0x22),
            "{kind:?}"
        );
        assert!(out[40 * 1024..].iter().all(|&b| b == 0x11), "{kind:?}");
    }
}

#[test]
fn latency_is_strictly_positive_and_bounded() {
    for kind in all_kinds() {
        let (mut sys, _vm, disk) = system_with_disk(kind, DISK_BYTES);
        let lat = sys.write(disk, 0, &[1u8; 1024]);
        assert!(lat.as_nanos() > 1_000, "{kind:?}: implausibly fast {lat}");
        assert!(
            lat.as_nanos() < 10_000_000,
            "{kind:?}: implausibly slow {lat}"
        );
    }
}

#[test]
fn clock_is_monotonic_across_operations() {
    let (mut sys, _vm, disk) = system_with_disk(DiskKind::NescDirect, DISK_BYTES);
    let mut last = sys.now();
    for i in 0..50u64 {
        sys.write(disk, (i % 8) * 4096, &[i as u8; 1024]);
        assert!(sys.now() > last);
        last = sys.now();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential test: random block-aligned writes and reads against an
    /// in-memory reference, on the NeSC and virtio paths (the two paths
    /// with interesting machinery).
    #[test]
    fn prop_matches_reference(
        ops in proptest::collection::vec(
            (0u64..(DISK_BYTES / BLOCK_SIZE - 32), 1usize..32, any::<u8>(), any::<bool>()),
            1..25,
        )
    ) {
        for kind in [DiskKind::NescDirect, DiskKind::Virtio] {
            let (mut sys, _vm, disk) = system_with_disk(kind, DISK_BYTES);
            let mut reference = ReferenceDisk::new(DISK_BYTES as usize);
            for &(block, nblocks, byte, is_write) in &ops {
                let offset = block * BLOCK_SIZE;
                let len = nblocks * BLOCK_SIZE as usize;
                if is_write {
                    let data = vec![byte; len];
                    sys.write(disk, offset, &data);
                    reference.write(offset as usize, &data);
                } else {
                    let mut out = vec![0u8; len];
                    sys.read(disk, offset, &mut out);
                    prop_assert_eq!(
                        &out[..],
                        reference.read(offset as usize, len),
                        "{:?} diverged at block {}",
                        kind,
                        block
                    );
                }
            }
        }
    }
}
