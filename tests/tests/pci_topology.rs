//! PCIe topology: SR-IOV enumeration of a NeSC controller and MMIO
//! routing to its functions — the addressing substrate that makes VF
//! requests unforgeable (paper §V).

use nesc_core::regs::{offsets, REG_WINDOW_BYTES};
use nesc_core::{FuncId, NescConfig, NescDevice};
use nesc_extent::ExtentTree;
use nesc_pcie::{Bdf, ConfigSpace, HostMemory, Interconnect, MsiVector};
use nesc_sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Enumerate a NeSC PF with `n` VFs enabled.
fn enumerated(n: u16) -> (Interconnect, Bdf) {
    let mut ic = Interconnect::new();
    let pf = Bdf::new(3, 0, 0);
    let mut cfg = ConfigSpace::nesc_pf();
    cfg.sriov.as_mut().unwrap().enable(n).unwrap();
    ic.attach(pf, cfg);
    ic.enumerate();
    (ic, pf)
}

#[test]
fn full_sriov_population_enumerates() {
    let (ic, pf) = enumerated(64);
    let funcs = ic.functions();
    assert_eq!(funcs.len(), 65);
    assert!(funcs.contains(&pf));
    // Every function has a BAR and every BAR routes back to it.
    for f in funcs {
        let base = ic.bar_base(f, 0).expect("assigned BAR");
        let hit = ic.route(base).expect("routes");
        assert_eq!(hit.bdf, f);
        assert_eq!(hit.offset, 0);
    }
}

#[test]
fn vf_register_windows_map_into_vf_bars() {
    // Each function's 2 KiB register window fits its 4 KiB VF BAR slice;
    // routing an address inside a VF's window identifies exactly that VF.
    let (ic, pf) = enumerated(8);
    let funcs = ic.functions();
    let vfs: Vec<Bdf> = funcs.into_iter().filter(|&f| f != pf).collect();
    assert_eq!(vfs.len(), 8);
    for (i, vf) in vfs.iter().enumerate() {
        let base = ic.bar_base(*vf, 0).unwrap();
        let hit = ic.route(base + offsets::REWALK_TREE).unwrap();
        assert_eq!(hit.bdf, *vf, "VF {i}");
        assert_eq!(hit.offset, offsets::REWALK_TREE);
        assert!(hit.offset < REG_WINDOW_BYTES);
    }
}

#[test]
fn bdf_attribution_matches_device_function_indices() {
    // The glue invariant: VF index i on the device corresponds to the
    // i-th SR-IOV VF address — so a TLP's BDF pins down the FuncId, which
    // is what makes client identity unforgeable.
    let (ic, pf) = enumerated(4);
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut dev = NescDevice::new(NescConfig::prototype(), Rc::clone(&mem));
    let root = ExtentTree::new().serialize(&mut mem.borrow_mut());
    let device_funcs: Vec<FuncId> = (0..4).map(|_| dev.create_vf(root, 16).unwrap()).collect();
    let bus_funcs: Vec<Bdf> = ic.functions().into_iter().filter(|&f| f != pf).collect();
    assert_eq!(device_funcs.len(), bus_funcs.len());
    for (i, (d, b)) in device_funcs.iter().zip(bus_funcs.iter()).enumerate() {
        assert_eq!(d.0 as usize, i + 1, "device-side VF index");
        // The bus address derives from the PF's routing id + 1 + i.
        assert_eq!(b.routing_id(), pf.routing_id() + 1 + i as u16);
    }
}

#[test]
fn mmio_register_access_through_windows() {
    // Drive the device's register file exactly as a driver would: read and
    // write at documented offsets.
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut dev = NescDevice::new(NescConfig::prototype(), Rc::clone(&mem));
    let root = ExtentTree::new().serialize(&mut mem.borrow_mut());
    let vf = dev.create_vf(root, 128).unwrap();
    assert_eq!(dev.mmio_read(vf, offsets::EXTENT_TREE_ROOT), root);
    assert_eq!(dev.mmio_read(vf, offsets::DEVICE_SIZE), 128);
    dev.mmio_write(vf, offsets::DEVICE_SIZE, 256, SimTime::ZERO);
    assert_eq!(dev.mmio_read(vf, offsets::DEVICE_SIZE), 256);
    // Reserved space reads zero; unknown functions read zero.
    assert_eq!(dev.mmio_read(vf, 0x700), 0);
    assert_eq!(dev.mmio_read(FuncId(42), offsets::DEVICE_SIZE), 0);
}

#[test]
fn msi_vectors_identify_their_function() {
    let (ic, pf) = enumerated(2);
    let vfs: Vec<Bdf> = ic.functions().into_iter().filter(|&f| f != pf).collect();
    let v0 = MsiVector::new(vfs[0], 0);
    let v1 = MsiVector::new(vfs[1], 0);
    assert_ne!(v0, v1);
    assert_eq!(v0.source(), vfs[0]);
    assert!(v0.to_string().contains("msi("));
}

#[test]
fn coexisting_devices_do_not_collide() {
    let mut ic = Interconnect::new();
    let mut nesc_cfg = ConfigSpace::nesc_pf();
    nesc_cfg.sriov.as_mut().unwrap().enable(16).unwrap();
    ic.attach(Bdf::new(3, 0, 0), nesc_cfg);
    ic.attach(Bdf::new(4, 0, 0), ConfigSpace::plain_storage());
    ic.attach(Bdf::new(5, 0, 0), ConfigSpace::plain_storage());
    ic.enumerate();
    let funcs = ic.functions();
    assert_eq!(funcs.len(), 1 + 16 + 2);
    // All windows disjoint: routing any function's BAR start hits only it.
    for f in funcs {
        assert_eq!(ic.route(ic.bar_base(f, 0).unwrap()).unwrap().bdf, f);
    }
}
