//! Nested virtualization (paper §IV-A aside): composed translation must
//! equal the mathematical composition of the per-level mappings, and
//! confinement must hold transitively — a nested VF can reach at most
//! what its parent can reach.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_core::{CompletionStatus, NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::SimTime;
use nesc_storage::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};
use proptest::prelude::*;

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

fn device() -> (Rc<RefCell<HostMemory>>, NescDevice) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 8192;
    let dev = NescDevice::new(cfg, Rc::clone(&mem));
    (mem, dev)
}

/// Builds a tree from `(logical, physical, len)` triples.
fn tree(mem: &Rc<RefCell<HostMemory>>, extents: &[(u64, u64, u64)]) -> u64 {
    let t: ExtentTree = extents
        .iter()
        .map(|&(l, p, n)| ExtentMapping::new(Vlba(l), Plba(p), n))
        .collect();
    t.serialize(&mut mem.borrow_mut())
}

#[test]
fn three_level_chain_translates_correctly() {
    let (mem, mut dev) = device();
    // L1: vlba x -> plba x + 1000 (64 blocks)
    let l1 = dev.create_vf(tree(&mem, &[(0, 1000, 64)]), 64).unwrap();
    // L2 inside L1: vlba x -> parent vlba x + 16 (32 blocks)
    let l2 = dev
        .create_nested_vf(l1, tree(&mem, &[(0, 16, 32)]), 32)
        .unwrap();
    // L3 inside L2: vlba x -> parent vlba x + 8 (8 blocks)
    let l3 = dev
        .create_nested_vf(l2, tree(&mem, &[(0, 8, 8)]), 8)
        .unwrap();
    let buf = mem.borrow_mut().alloc(1024, 4096);
    mem.borrow_mut().write(buf, &[0x88; 1024]);
    dev.submit(
        SimTime::ZERO,
        l3,
        BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(2), 1),
        buf,
    );
    let outs = dev.advance(HORIZON);
    assert!(outs.last().unwrap().is_completion());
    // L3 vlba 2 -> L2 vlba 10 -> L1 vlba 26 -> pLBA 1026.
    assert_eq!(
        dev.store().read_block(Plba(1026)).unwrap(),
        vec![0x88; 1024]
    );
}

#[test]
fn nested_reads_see_parent_holes_as_zeros() {
    let (mem, mut dev) = device();
    // Parent maps only vlba 0..2; the nested tree points block 1 at
    // parent vlba 5 — a hole in the parent.
    let l1 = dev.create_vf(tree(&mem, &[(0, 100, 2)]), 16).unwrap();
    let l2 = dev
        .create_nested_vf(l1, tree(&mem, &[(0, 0, 1), (1, 5, 1)]), 2)
        .unwrap();
    dev.store_mut()
        .write_block(Plba(100), &vec![0x41; 1024])
        .unwrap();
    let buf = mem.borrow_mut().alloc(2048, 4096);
    mem.borrow_mut().write(buf, &[0xFF; 2048]);
    dev.submit(
        SimTime::ZERO,
        l2,
        BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 2),
        buf,
    );
    let outs = dev.advance(HORIZON);
    assert!(matches!(
        outs.last(),
        Some(NescOutput::Completion {
            status: CompletionStatus::Ok,
            ..
        })
    ));
    let got = mem.borrow().read_vec(buf, 2048);
    assert!(got[..1024].iter().all(|&b| b == 0x41), "mapped block");
    assert!(got[1024..].iter().all(|&b| b == 0x00), "parent hole zeros");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random two-level mappings: the device's composed translation
    /// equals function composition of the two extent trees, and writes
    /// land only where the composition allows.
    #[test]
    fn prop_composition_matches_reference(
        l1_exts in proptest::collection::vec((0u64..48, 0u64..4000, 1u64..8), 1..6),
        l2_exts in proptest::collection::vec((0u64..24, 0u64..48, 1u64..6), 1..5),
        probes in proptest::collection::vec(0u64..32, 1..12),
    ) {
        let (mem, mut dev) = device();
        // Deduplicate overlapping logical ranges by inserting fallibly.
        let mut t1 = ExtentTree::new();
        for &(l, p, n) in &l1_exts {
            let _ = t1.insert(ExtentMapping::new(Vlba(l), Plba(p + 64), n));
        }
        let mut t2 = ExtentTree::new();
        for &(l, p, n) in &l2_exts {
            let _ = t2.insert(ExtentMapping::new(Vlba(l), Plba(p), n));
        }
        let root1 = t1.serialize(&mut mem.borrow_mut());
        let root2 = t2.serialize(&mut mem.borrow_mut());
        let l1 = dev.create_vf(root1, 64).unwrap();
        let l2 = dev.create_nested_vf(l1, root2, 32).unwrap();
        let buf = mem.borrow_mut().alloc(BLOCK_SIZE, 4096);
        let mut t = SimTime::ZERO;
        for (k, &v) in probes.iter().enumerate() {
            // Reference composition: v --t2--> m --t1--> p (None = hole).
            let expect = t2
                .lookup(Vlba(v))
                .and_then(|e| e.translate(Vlba(v)))
                .filter(|m| m.0 < 64) // parent size check
                .and_then(|m| {
                    t1.lookup(Vlba(m.0)).and_then(|e| e.translate(Vlba(m.0)))
                });
            mem.borrow_mut().write(buf, &[0xD7; BLOCK_SIZE as usize]);
            dev.submit(
                t,
                l2,
                BlockRequest::new(RequestId(k as u64 + 1), BlockOp::Read, Vlba(v), 1),
                buf,
            );
            let outs = dev.advance(HORIZON);
            t = outs.iter().map(NescOutput::at).max().unwrap_or(t);
            // A read of a composed mapping returns the store's content
            // (zeros here) — but the key check: writes.
            mem.borrow_mut().write(buf, &[0x5E; BLOCK_SIZE as usize]);
            dev.submit(
                t,
                l2,
                BlockRequest::new(RequestId(1000 + k as u64), BlockOp::Write, Vlba(v), 1),
                buf,
            );
            let outs = dev.advance(HORIZON);
            t = outs.iter().map(NescOutput::at).max().unwrap_or(t);
            match expect {
                Some(p) => {
                    // The write must land exactly at the composed pLBA
                    // (possibly after a stall-free path; composed holes
                    // would have stalled — resolve by failing).
                    if dev.store().is_written(p) {
                        prop_assert_eq!(
                            dev.store().read_block(p).unwrap(),
                            vec![0x5E; BLOCK_SIZE as usize]
                        );
                    } else {
                        // The write stalled at some level (an L1 hole on
                        // the path); fail it and move on.
                        dev.fail_stalled(l2, t);
                        let more = dev.advance(HORIZON);
                        t = more.iter().map(NescOutput::at).max().unwrap_or(t);
                    }
                }
                None => {
                    // Hole somewhere in the chain: the write must stall
                    // (or be rejected), never land anywhere new outside
                    // the composed range. Resolve the stall by failing.
                    dev.fail_stalled(l2, t);
                    let more = dev.advance(HORIZON);
                    t = more.iter().map(NescOutput::at).max().unwrap_or(t);
                }
            }
        }
        // Global confinement: every written block is in t1's physical
        // image (the only way to the store is through L1).
        let mut allowed = std::collections::HashSet::new();
        for e in t1.iter() {
            for b in e.physical.0..e.end_physical().0 {
                allowed.insert(b);
            }
        }
        for b in 0..8192u64 {
            if dev.store().is_written(Plba(b)) {
                prop_assert!(allowed.contains(&b), "escape to pLBA {}", b);
            }
        }
    }
}
