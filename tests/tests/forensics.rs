//! Forensic cross-checks for the flight recorder: the worst-K exemplar
//! span trees it retains must be *exactly* the tracer's subtrees — not a
//! lossy summary — and the anomaly-triggered forensic dump must be
//! byte-identical across same-seed runs, because `results/` gates it as
//! a golden.
//!
//! The recorder captures each exemplar's subtree live at window close
//! via [`Tracer::subtree`]; the reference here re-derives the same tree
//! from the full drained span log at the end of the run. If capture
//! timing, subtree reachability, or span ordering ever drift between the
//! two paths, the equality fails on a randomized workload.

use nesc_hypervisor::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

const INTERVAL_US: u64 = 25;
const VFS: usize = 3;
const DISK_BYTES: u64 = 4 << 20;

/// A traced, telemetry-enabled system with the flight recorder on and a
/// watchdog rule that trips on sustained vf0 traffic — the same breach
/// class the prune-pressure ablation uses, scaled down for a test.
fn forensic_system() -> (System, Vec<DiskId>) {
    let tel = TelemetryConfig::windowed(SimDuration::from_micros(INTERVAL_US))
        .capacity(4096)
        .rule_text("hv.vf0.requests above 0 for 3")
        // Retain every window's exemplars so the reference comparison
        // below covers the whole run, not just the trailing horizon.
        .flight(
            FlightConfig::default()
                .exemplar_k(4)
                .exemplar_windows(1 << 20),
        );
    let mut sys = SystemBuilder::new()
        .capacity_blocks((DISK_BYTES / 512) * (VFS as u64 + 1))
        .max_vfs(8)
        .tracing(true)
        .telemetry(tel)
        .build();
    let disks = (0..VFS)
        .map(|i| {
            sys.quick_disk(DiskKind::NescDirect, &format!("vf{i}.img"), DISK_BYTES)
                .disk
        })
        .collect();
    (sys, disks)
}

/// Replays a deterministic op list (vf, size index, read?, think µs).
fn drive(sys: &mut System, disks: &[DiskId], ops: &[(usize, usize, bool, u64)]) {
    let sizes = [2048u64, 4096, 8192, 16384];
    let mut buf = vec![0u8; 16384];
    for &(vf, szi, is_read, think_us) in ops {
        let bytes = sizes[szi] as usize;
        let offset = szi as u64 * 16384;
        if is_read {
            sys.read(disks[vf], offset, &mut buf[..bytes]);
        } else {
            sys.write(disks[vf], offset, &buf[..bytes]);
        }
        sys.think(SimDuration::from_micros(think_us));
    }
}

/// Re-derives a subtree from the full drained span log the same way
/// [`Tracer::subtree`] walks its live window: one forward pass in id
/// order, keeping the root and every span whose parent is already kept.
fn reference_subtree(spans: &[Span], root: u64) -> Vec<Span> {
    let mut kept = BTreeSet::new();
    let mut out = Vec::new();
    for s in spans {
        if s.id.0 == root || kept.contains(&s.parent.0) {
            kept.insert(s.id.0);
            out.push(s.clone());
        }
    }
    out
}

/// One full run: the retained exemplars (cloned before the destructive
/// span drain) plus the complete span log and the serialized forensic
/// dump, if the watchdog fired.
fn run(ops: &[(usize, usize, bool, u64)]) -> (Vec<Exemplar>, Vec<Span>, Option<String>) {
    let (mut sys, disks) = forensic_system();
    drive(&mut sys, &disks, ops);
    sys.telemetry_finish();
    let exemplars: Vec<Exemplar> = sys
        .flight()
        .with(|r| r.exemplars().iter().cloned().collect())
        .expect("flight recorder enabled");
    let dump = sys
        .telemetry()
        .expect("telemetry enabled")
        .forensic_dump()
        .map(|d| serde_json::to_string(d).expect("serialize dump"));
    let spans = sys.take_spans();
    (exemplars, spans, dump)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every retained exemplar's captured span tree equals the subtree
    /// re-derived from the full trace, and exemplars join back to real
    /// request roots.
    #[test]
    fn prop_exemplar_trees_match_full_trace(
        ops in proptest::collection::vec(
            (0usize..VFS, 0usize..4usize, any::<bool>(), 1u64..30),
            8..40,
        )
    ) {
        let (exemplars, spans, _dump) = run(&ops);
        prop_assert!(!exemplars.is_empty(), "traced run must retain exemplars");
        for x in &exemplars {
            prop_assert!(x.root != 0, "tracing is on, every exemplar has a root");
            let reference = reference_subtree(&spans, x.root);
            prop_assert_eq!(&x.spans, &reference);
            // The captured tree is rooted at the request span itself.
            prop_assert_eq!(x.spans[0].id.0, x.root);
            prop_assert_eq!(x.spans[0].parent, SpanId::NONE);
            prop_assert_eq!(
                (x.spans[0].end - x.spans[0].start).as_nanos(),
                x.latency_ns
            );
        }
    }

    /// Two same-seed runs serialize bit-identical forensic dumps (or
    /// neither trips the watchdog) — the property that makes the dump a
    /// byte-gated golden.
    #[test]
    fn prop_same_seed_dumps_are_byte_identical(
        ops in proptest::collection::vec(
            (0usize..VFS, 0usize..4usize, any::<bool>(), 1u64..30),
            8..60,
        )
    ) {
        let (_, _, first) = run(&ops);
        let (_, _, second) = run(&ops);
        prop_assert_eq!(first, second);
    }
}

/// A sustained single-VF burst trips the `hv.vf0.requests` rule and
/// yields a dump carrying the anomaly, the window series, and the flight
/// snapshot — deterministically.
#[test]
fn sustained_burst_produces_a_deterministic_dump() {
    let ops: Vec<(usize, usize, bool, u64)> = (0..40).map(|_| (0, 2, false, 10)).collect();
    let (exemplars, _spans, dump) = run(&ops);
    let text = dump.expect("sustained vf0 traffic must trip the watchdog");
    for key in ["\"anomaly\"", "\"series\"", "\"flight\"", "\"rule_index\""] {
        assert!(text.contains(key), "dump is missing {key}");
    }
    assert!(!exemplars.is_empty());
    let (_, _, again) = run(&ops);
    assert_eq!(Some(text), again, "same-seed dump must be byte-identical");
}
