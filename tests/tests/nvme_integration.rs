//! NVMe-over-NeSC integration: queue wraparound under sustained load,
//! many namespaces, interleaved queues, and differential data checks.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_core::NescConfig;
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_nvme::{NvmeController, NvmeOpcode, SubmissionEntry};
use nesc_pcie::HostMemory;
use nesc_sim::SimTime;
use proptest::prelude::*;

fn controller(capacity_blocks: u64) -> (Rc<RefCell<HostMemory>>, NvmeController) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = capacity_blocks;
    let ctrl = NvmeController::new(cfg, Rc::clone(&mem));
    (mem, ctrl)
}

fn contiguous_ns(
    mem: &Rc<RefCell<HostMemory>>,
    ctrl: &mut NvmeController,
    base: u64,
    blocks: u64,
) -> u32 {
    let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(base), blocks)]
        .into_iter()
        .collect();
    let root = tree.serialize(&mut mem.borrow_mut());
    ctrl.create_namespace(root, blocks).unwrap()
}

#[test]
fn sustained_load_wraps_the_rings_many_times() {
    let (mem, mut ctrl) = controller(16 * 1024);
    let ns = contiguous_ns(&mem, &mut ctrl, 0, 1024);
    let qid = ctrl.create_queue_pair(4); // tiny ring: wraps every 3 commands
    let buf = mem.borrow_mut().alloc(1024, 4096);
    let mut t = SimTime::ZERO;
    for i in 0..64u64 {
        mem.borrow_mut().write(buf, &[i as u8; 1024]);
        let done = ctrl
            .submit_and_process(
                t,
                qid,
                &[SubmissionEntry::new(
                    NvmeOpcode::Write,
                    (i % 32) as u16,
                    ns,
                    buf,
                    Vlba(i % 1024),
                    0,
                )],
            )
            .unwrap();
        assert_eq!(done.len(), 1, "iteration {i}");
        assert!(done[0].0.status.is_success(), "iteration {i}");
        t = done[0].1;
    }
    assert_eq!(ctrl.device().stats().requests_completed, 64);
}

#[test]
fn max_namespaces_then_exhaustion() {
    let (mem, mut ctrl) = controller(128 * 1024);
    let max = ctrl.device().config().max_vfs;
    for i in 0..max as u64 {
        contiguous_ns(&mem, &mut ctrl, i * 16, 16);
    }
    let tree = ExtentTree::new().serialize(&mut mem.borrow_mut());
    assert!(ctrl.create_namespace(tree, 1).is_err());
    // Deleting one frees a slot.
    ctrl.delete_namespace(1).unwrap();
    assert!(ctrl.create_namespace(tree, 1).is_ok());
}

#[test]
fn interleaved_queues_complete_independently() {
    let (mem, mut ctrl) = controller(16 * 1024);
    let ns = contiguous_ns(&mem, &mut ctrl, 0, 1024);
    let q_a = ctrl.create_queue_pair(8);
    let q_b = ctrl.create_queue_pair(8);
    let buf = mem.borrow_mut().alloc(4096, 4096);
    // Push to both queues, ring both doorbells, process once.
    for (q, cid) in [(q_a, 1u16), (q_b, 2), (q_a, 3), (q_b, 4)] {
        ctrl.push(
            q,
            SubmissionEntry::new(NvmeOpcode::Read, cid, ns, buf, Vlba(cid as u64 * 4), 3),
        )
        .unwrap();
    }
    ctrl.ring_doorbell(q_a, SimTime::ZERO).unwrap();
    ctrl.ring_doorbell(q_b, SimTime::ZERO).unwrap();
    ctrl.process(SimTime::from_nanos(u64::MAX / 4));
    let reap_ids = |ctrl: &mut NvmeController, q: u16| {
        let mut v = Vec::new();
        while let Some(c) = ctrl.reap(q) {
            v.push(c.cid);
        }
        v
    };
    assert_eq!(reap_ids(&mut ctrl, q_a), vec![1, 3]);
    assert_eq!(reap_ids(&mut ctrl, q_b), vec![2, 4]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random write/read command streams against a reference byte model.
    #[test]
    fn prop_namespace_matches_reference(
        ops in proptest::collection::vec((0u64..60, 1u32..4, any::<u8>(), any::<bool>()), 1..25)
    ) {
        let (mem, mut ctrl) = controller(16 * 1024);
        let ns = contiguous_ns(&mem, &mut ctrl, 64, 64);
        let qid = ctrl.create_queue_pair(16);
        let buf = mem.borrow_mut().alloc(4096, 4096);
        let mut reference = vec![0u8; 64 * 1024];
        let mut t = SimTime::ZERO;
        for (i, &(slba, nlb, byte, is_write)) in ops.iter().enumerate() {
            if slba + nlb as u64 + 1 > 64 {
                continue;
            }
            let bytes = (nlb as usize + 1) * 1024;
            let op = if is_write {
                mem.borrow_mut().write(buf, &vec![byte; bytes]);
                NvmeOpcode::Write
            } else {
                NvmeOpcode::Read
            };
            let done = ctrl
                .submit_and_process(
                    t,
                    qid,
                    &[SubmissionEntry::new(op, i as u16, ns, buf, Vlba(slba), nlb)],
                )
                .unwrap();
            prop_assert!(done[0].0.status.is_success());
            t = done[0].1;
            let lo = slba as usize * 1024;
            if is_write {
                reference[lo..lo + bytes].fill(byte);
            } else {
                let got = mem.borrow().read_vec(buf, bytes);
                prop_assert_eq!(&got[..], &reference[lo..lo + bytes]);
            }
        }
    }
}
