//! The observability subsystem, end to end: span-tree invariants on every
//! virtualization path, deterministic trace reproduction, the
//! partition-equals-latency guarantee the breakdown harness relies on,
//! the metrics registry, and the Perfetto exporter.

use nesc_hypervisor::prelude::*;

/// A traced system with one disk on `kind`, pre-warmed and drained.
fn traced(kind: DiskKind) -> (System, DiskId) {
    let mut sys = SystemBuilder::new()
        .capacity_blocks(64 * 1024)
        .tracing(true)
        .build();
    let disk = sys.quick_disk(kind, "obs.img", 8 << 20).disk;
    sys.write(disk, 0, &[0x77u8; 64 * 1024]);
    let _ = sys.take_spans();
    (sys, disk)
}

fn run_small_workload(sys: &mut System, disk: DiskId) {
    sys.write(disk, 0, &[0xABu8; 4096]);
    sys.write(disk, 100 * 1024, &[0xCDu8; 8192]);
    let mut buf = vec![0u8; 4096];
    sys.read(disk, 0, &mut buf);
    assert_eq!(buf, vec![0xABu8; 4096]);
}

#[test]
fn every_path_produces_well_nested_spans() {
    for kind in [
        DiskKind::NescDirect,
        DiskKind::Virtio,
        DiskKind::Emulated,
        DiskKind::HostRaw,
    ] {
        let (mut sys, disk) = traced(kind);
        run_small_workload(&mut sys, disk);
        let tree = SpanTree::new(sys.take_spans());
        tree.check_nesting()
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        let requests = tree.roots().filter(|s| s.name == "request").count();
        assert_eq!(requests, 3, "{kind:?}: one root per request");
    }
}

#[test]
fn children_partition_end_to_end_latency_on_every_path() {
    for kind in [
        DiskKind::NescDirect,
        DiskKind::Virtio,
        DiskKind::Emulated,
        DiskKind::HostRaw,
    ] {
        let (mut sys, disk) = traced(kind);
        let latency = sys.write(disk, 4096, &[0x5Au8; 4096]);
        let tree = SpanTree::new(sys.take_spans());
        let root = tree
            .roots()
            .find(|s| s.name == "request")
            .expect("a request root");
        tree.check_partition(root.id)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        let child_sum: u64 = tree.children(root.id).map(|c| c.duration_ns()).sum();
        assert_eq!(
            child_sum,
            latency.as_nanos(),
            "{kind:?}: direct children must sum to the measured latency"
        );
    }
}

#[test]
fn traces_are_deterministic_across_reruns() {
    let run = || {
        let (mut sys, disk) = traced(DiskKind::NescDirect);
        run_small_workload(&mut sys, disk);
        sys.take_spans()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "same workload must reproduce the identical span forest"
    );
    // Ids are sequential in creation order — stable coordinates for
    // goldens (the warm-up drain consumed the ids before `a[0]`).
    for (i, s) in a.iter().enumerate() {
        assert_eq!(s.id.0, a[0].id.0 + i as u64, "ids are dense and ordered");
    }
}

#[test]
fn golden_trace_of_one_direct_write() {
    // A single 4 KiB write on a warm direct disk: the span skeleton below
    // is the contract the docs and the breakdown harness describe. If an
    // instrumentation change alters it, this golden is the deliberate
    // update point.
    let (mut sys, disk) = traced(DiskKind::NescDirect);
    sys.write(disk, 0, &[0xEEu8; 4096]);
    let tree = SpanTree::new(sys.take_spans());
    let root = tree
        .roots()
        .find(|s| s.name == "request")
        .expect("request root");
    assert_eq!(root.layer, "guest");
    assert_eq!(root.attr("bytes"), Some(4096));
    assert_eq!(root.attr("write"), Some(1));
    assert_eq!(root.attr("failed"), Some(0));
    let skeleton: Vec<(&str, &str)> = tree.children(root.id).map(|s| (s.layer, s.name)).collect();
    assert_eq!(
        skeleton,
        vec![
            ("guest", "guest_submit"),
            ("pcie", "doorbell"),
            ("core", "device_wait"),
            ("guest", "guest_complete"),
        ]
    );
    // Under device_wait: the device span, which owns translation and media.
    let dev_wait = tree
        .children(root.id)
        .find(|s| s.name == "device_wait")
        .unwrap();
    let device = tree
        .children(dev_wait.id)
        .find(|s| s.name == "device")
        .expect("device span under device_wait");
    let inner: Vec<&str> = tree.children(device.id).map(|s| s.name).collect();
    assert!(inner.contains(&"translate"), "inner spans: {inner:?}");
    assert!(inner.contains(&"media"), "inner spans: {inner:?}");
}

#[test]
fn virtio_and_emulation_attribute_their_software_layers() {
    let (mut sys, disk) = traced(DiskKind::Virtio);
    sys.write(disk, 0, &[1u8; 4096]);
    let tree = SpanTree::new(sys.take_spans());
    let root = tree.roots().find(|s| s.name == "request").unwrap();
    let names: Vec<&str> = tree.children(root.id).map(|s| s.name).collect();
    assert_eq!(
        names,
        vec![
            "guest_submit",
            "kick",
            "host_backend",
            "device_wait",
            "guest_complete"
        ]
    );

    let (mut sys, disk) = traced(DiskKind::Emulated);
    sys.write(disk, 0, &[1u8; 4096]);
    let tree = SpanTree::new(sys.take_spans());
    let root = tree.roots().find(|s| s.name == "request").unwrap();
    let names: Vec<&str> = tree.children(root.id).map(|s| s.name).collect();
    assert_eq!(
        names,
        vec![
            "guest_submit",
            "trap_emulate",
            "host_backend",
            "device_wait",
            "guest_complete"
        ]
    );
}

#[test]
fn write_failure_still_tiles_and_flags_the_root() {
    // Exhaust a tiny virtio disk's backing space: the WriteFailed early
    // return must still produce a partitioned trace with failed=1.
    let mut sys = SystemBuilder::new()
        .capacity_blocks(2 * 1024)
        .tracing(true)
        .build();
    let vm = sys.create_vm();
    let img = sys
        .create_image("tiny.img", 8 << 20, false)
        .expect("sparse image fits");
    let disk = sys.attach(vm, DiskKind::Virtio, Some(img));
    let mut failed_root = None;
    for i in 0..2048 {
        if sys
            .try_write(disk, i * 1024 * 1024, &[0x44u8; 4096])
            .is_err()
        {
            let tree = SpanTree::new(sys.take_spans());
            let root = tree
                .roots()
                .filter(|s| s.name == "request")
                .last()
                .unwrap()
                .clone();
            tree.check_partition(root.id).expect("failure still tiles");
            failed_root = Some(root);
            break;
        }
    }
    let root = failed_root.expect("the tiny device must fill up");
    assert_eq!(root.attr("failed"), Some(1));
}

#[test]
fn disabled_tracing_records_nothing() {
    let mut sys = SystemBuilder::new().capacity_blocks(64 * 1024).build();
    let disk = sys
        .quick_disk(DiskKind::NescDirect, "off.img", 4 << 20)
        .disk;
    sys.write(disk, 0, &[9u8; 4096]);
    assert!(!sys.tracer().is_enabled());
    assert!(sys.take_spans().is_empty());
    // Metrics still accumulate — they are cheap and always on.
    assert_eq!(sys.metrics().counter("requests_nesc_direct"), 1);
}

#[test]
fn metrics_count_requests_bytes_and_errors_per_path() {
    let (mut sys, disk) = traced(DiskKind::NescDirect);
    run_small_workload(&mut sys, disk);
    let m = sys.metrics();
    // Warm-up write + 3 workload requests.
    assert_eq!(m.counter("requests_nesc_direct"), 4);
    assert_eq!(
        m.counter("bytes_nesc_direct"),
        64 * 1024 + 4096 + 8192 + 4096
    );
    assert_eq!(m.counter("errors_nesc_direct"), 0);
    let lat = m.histogram("latency_ns_nesc_direct").expect("histogram");
    assert_eq!(lat.count(), 4);
    assert!(lat.min() > 0 && lat.max() >= lat.min());

    // An out-of-range read lands in the error counter, not the histogram.
    let mut buf = [0u8; 512];
    assert_eq!(
        sys.try_read(disk, 1 << 40, &mut buf),
        Err(NescError::OutOfRange)
    );
    assert_eq!(sys.metrics().counter("errors_nesc_direct"), 1);
}

#[test]
fn chrome_trace_export_validates_and_covers_all_layers() {
    let (mut sys, disk) = traced(DiskKind::NescDirect);
    run_small_workload(&mut sys, disk);
    let spans = sys.take_spans();
    let doc = chrome_trace_json(&spans);
    let events = nesc_sim::validate_chrome_trace(&doc).expect("valid trace-event JSON");
    // One complete event per span plus one thread-name metadata event per
    // distinct layer.
    let layers: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.layer).collect();
    assert_eq!(events, spans.len() + layers.len());
    for required in ["guest", "core", "pcie", "storage"] {
        assert!(layers.contains(required), "missing layer {required}");
    }
}

#[test]
fn stalled_requests_reopen_as_resume_spans() {
    // A write to unallocated space on a direct disk forces the WriteMiss
    // stall + RewalkTree resume flow; the trace must show the stalled
    // device span and the resume span under the same device_wait.
    let mut sys = SystemBuilder::new()
        .capacity_blocks(64 * 1024)
        .tracing(true)
        .build();
    let vm = sys.create_vm();
    let img = sys
        .create_image("miss.img", 8 << 20, false)
        .expect("sparse image");
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    sys.write(disk, 4 << 20, &[0x31u8; 4096]); // unallocated: must miss
    let tree = SpanTree::new(sys.take_spans());
    tree.check_nesting().expect("nested");
    let stalled = tree
        .spans()
        .iter()
        .find(|s| s.name == "device" && s.attr("stalled") == Some(1))
        .expect("a stalled device span");
    let resume = tree
        .spans()
        .iter()
        .find(|s| s.name == "device_resume")
        .expect("a resume span");
    assert_eq!(
        stalled.parent, resume.parent,
        "stall and resume share the device_wait parent"
    );
    assert!(resume.start >= stalled.end);
}
