//! Crash recovery and nested journaling (paper §IV-D).
//!
//! The guest runs its own journaled filesystem on its virtual disk; a
//! crash at an arbitrary point must replay into consistent metadata. The
//! nested-journaling configuration (guest data journaling on top of a
//! journaling host) is exercised for its cost, matching the paper's
//! discussion of why hypervisors tune it away.

use nesc_fs::{Filesystem, Journal, JournalRecord};
use nesc_hypervisor::{DiskKind, GuestFilesystem};
use nesc_storage::{BlockStore, BLOCK_SIZE};
use nesc_system_tests::{small_system, system_with_disk};
use proptest::prelude::*;

#[test]
fn host_fs_replay_reconstructs_after_guest_workload() {
    // Drive a workload through the system, then replay the *host*
    // filesystem's journal and compare metadata.
    let mut sys = small_system();
    let vm = sys.create_vm();
    let img = sys.create_image("wl.img", 8 << 20, false).unwrap();
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    for i in 0..10u64 {
        sys.write(disk, i * 300 * BLOCK_SIZE, &vec![i as u8; 4096]);
    }
    let replayed = Filesystem::replay(64 * 1024, sys.host_fs().journal());
    let orig_tree = sys.host_fs().extent_tree(img).unwrap();
    let replay_tree = replayed.extent_tree(img).unwrap();
    assert_eq!(orig_tree, replay_tree, "host journal replay must converge");
    assert_eq!(replayed.free_blocks(), sys.host_fs().free_blocks());
}

#[test]
fn uncommitted_transaction_lost_committed_survive() {
    let mut fs = Filesystem::format(4096);
    let mut store = BlockStore::new(4096);
    let a = fs.create("a").unwrap();
    fs.write(&mut store, a, 0, &vec![1u8; 2048]).unwrap();
    // Snapshot the journal as-of-commit, then "crash" with a pending op.
    let committed: Journal = fs.journal().clone();
    let recovered = Filesystem::replay(4096, &committed);
    assert!(recovered.lookup("a").is_some());
    assert_eq!(
        recovered
            .size_bytes(recovered.lookup("a").unwrap())
            .unwrap(),
        2048
    );
}

#[test]
fn journal_records_account_for_all_block_ownership() {
    // After replaying any journal, allocator state equals the sum of the
    // extents the inodes own (no leaks, no double ownership).
    let mut fs = Filesystem::format(4096);
    let mut store = BlockStore::new(4096);
    let a = fs.create("a").unwrap();
    let b = fs.create("b").unwrap();
    fs.write(&mut store, a, 0, &vec![1u8; 10 * 1024]).unwrap();
    fs.write(&mut store, b, 5000, &vec![2u8; 20 * 1024])
        .unwrap();
    fs.truncate(a, 1024).unwrap();
    fs.unlink("b").unwrap();
    let recovered = Filesystem::replay(4096, fs.journal());
    let owned: u64 = recovered
        .lookup("a")
        .map(|ino| recovered.extent_tree(ino).unwrap().mapped_blocks())
        .unwrap_or(0);
    assert_eq!(
        recovered.free_blocks(),
        4096 - recovered.metadata_blocks() - owned
    );
}

#[test]
fn nested_journaling_costs_more_than_metadata_only() {
    // ext4's data=journal inside the guest (the "nested journaling"
    // pathology): measurably slower than data=ordered on the same path.
    let run = |data_journal: bool| {
        let (mut sys, vm, disk) = system_with_disk(DiskKind::NescDirect, 8 << 20);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        gfs.set_journal_data(data_journal);
        let f = gfs.create(&mut sys, "f").unwrap();
        let start = sys.now();
        for i in 0..8u64 {
            gfs.write(&mut sys, f, i * 32 * 1024, &vec![3u8; 32 * 1024])
                .unwrap();
        }
        (sys.now() - start).as_micros_f64()
    };
    let ordered = run(false);
    let journaled = run(true);
    assert!(
        journaled > ordered * 1.3,
        "data journaling ({journaled:.0}us) must cost well over data=ordered ({ordered:.0}us)"
    );
}

#[test]
fn guest_fs_metadata_survives_replay_of_its_own_journal() {
    // The guest's filesystem is the same implementation: its journal
    // replays too (what a guest fsck-after-crash does).
    let (mut sys, vm, disk) = system_with_disk(DiskKind::NescDirect, 8 << 20);
    let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
    let f = gfs.create(&mut sys, "mail").unwrap();
    gfs.write(&mut sys, f, 0, &vec![7u8; 10_000]).unwrap();
    gfs.create(&mut sys, "tmp").unwrap();
    gfs.unlink(&mut sys, "tmp").unwrap();
    let blocks = sys.disk_size_blocks(disk);
    let recovered = Filesystem::replay(blocks, gfs.fs().journal());
    assert!(recovered.lookup("mail").is_some());
    assert!(recovered.lookup("tmp").is_none());
    assert_eq!(
        recovered
            .extent_tree(recovered.lookup("mail").unwrap())
            .unwrap(),
        gfs.fs().extent_tree(f).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replay after an arbitrary prefix of operations always yields
    /// metadata identical to the live filesystem at that point.
    #[test]
    fn prop_replay_prefix_consistent(
        ops in proptest::collection::vec((0u8..4, 0u64..64, 1usize..5000), 1..30)
    ) {
        let mut fs = Filesystem::format(8192);
        let mut store = BlockStore::new(8192);
        let mut names: Vec<String> = Vec::new();
        for (i, &(op, off, len)) in ops.iter().enumerate() {
            match op {
                0 => {
                    let name = format!("f{i}");
                    fs.create(&name).unwrap();
                    names.push(name);
                }
                1 if !names.is_empty() => {
                    let name = &names[off as usize % names.len()];
                    if let Some(ino) = fs.lookup(name) {
                        let _ = fs.write(&mut store, ino, off * 100, &vec![1u8; len]);
                    }
                }
                2 if !names.is_empty() => {
                    let name = names.remove(off as usize % names.len());
                    let _ = fs.unlink(&name);
                }
                _ if !names.is_empty() => {
                    let name = &names[off as usize % names.len()];
                    if let Some(ino) = fs.lookup(name) {
                        let _ = fs.truncate(ino, off * 10);
                    }
                }
                _ => {}
            }
        }
        let recovered = Filesystem::replay(8192, fs.journal());
        prop_assert_eq!(recovered.free_blocks(), fs.free_blocks());
        for name in fs.list() {
            let live = fs.lookup(name).unwrap();
            let rec = recovered.lookup(name);
            prop_assert_eq!(rec, Some(live), "{} lost", name);
            prop_assert_eq!(
                recovered.extent_tree(live).unwrap(),
                fs.extent_tree(live).unwrap()
            );
            prop_assert_eq!(
                recovered.size_bytes(live).unwrap(),
                fs.size_bytes(live).unwrap()
            );
        }
    }
}

// Journal must be cloneable for the crash-snapshot idiom above.
#[test]
fn journal_snapshot_is_independent() {
    let mut j = Journal::new();
    j.append(JournalRecord::Unlink { name: "x".into() });
    j.commit();
    let snap = j.clone();
    j.append(JournalRecord::Unlink { name: "y".into() });
    j.commit();
    assert_eq!(snap.transactions(), 1);
    assert_eq!(j.transactions(), 2);
}
