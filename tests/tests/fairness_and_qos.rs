//! Multiplexer fairness (round-robin, paper §V-A) and the QoS-priority
//! extension (§IV-D) at the whole-device level.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_core::{FuncId, NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_pcie::HostMemory;
use nesc_sim::SimTime;
use nesc_storage::{BlockOp, BlockRequest, RequestId};

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

fn device_with_vfs(n: u64) -> (Rc<RefCell<HostMemory>>, NescDevice, Vec<FuncId>) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 256 * 1024;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let vfs = (0..n)
        .map(|i| {
            let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(i * 1024), 1024)]
                .into_iter()
                .collect();
            let root = tree.serialize(&mut mem.borrow_mut());
            dev.create_vf(root, 1024).unwrap()
        })
        .collect();
    (mem, dev, vfs)
}

#[test]
fn equal_demand_gets_equal_service() {
    let (mem, mut dev, vfs) = device_with_vfs(4);
    let buf = mem.borrow_mut().alloc(4096, 4096);
    for i in 0..32u64 {
        for &vf in &vfs {
            dev.submit(
                SimTime::ZERO,
                vf,
                BlockRequest::new(
                    RequestId(i * 100 + vf.0 as u64),
                    BlockOp::Read,
                    Vlba((i * 4) % 1020),
                    4,
                ),
                buf,
            );
        }
    }
    dev.advance(HORIZON);
    let counts: Vec<u64> = vfs.iter().map(|&vf| dev.function_counters(vf).0).collect();
    assert!(counts.iter().all(|&c| c == 32), "equal service: {counts:?}");
}

#[test]
fn small_client_not_starved_by_hog() {
    // Round-robin interleaves: the small client's k-th request completes
    // after at most k hog requests, never behind the hog's whole queue.
    let (mem, mut dev, vfs) = device_with_vfs(2);
    let (hog, small) = (vfs[0], vfs[1]);
    let buf = mem.borrow_mut().alloc(256 * 1024, 4096);
    for i in 0..16u64 {
        dev.submit(
            SimTime::ZERO,
            hog,
            BlockRequest::new(RequestId(1000 + i), BlockOp::Read, Vlba((i * 64) % 960), 64),
            buf,
        );
    }
    for i in 0..4u64 {
        dev.submit(
            SimTime::ZERO,
            small,
            BlockRequest::new(RequestId(1 + i), BlockOp::Read, Vlba(i), 1),
            buf,
        );
    }
    let outs = dev.advance(HORIZON);
    let completion_index = |want: u64| {
        outs.iter()
            .filter_map(|o| match o {
                NescOutput::Completion { id, .. } => Some(id.0),
                _ => None,
            })
            .position(|id| id == want)
            .expect("completed")
    };
    // The small client's last request finishes among the first ~9
    // completions (interleaved 1:1 with the hog), far ahead of the hog's
    // 16-deep queue.
    assert!(
        completion_index(4) <= 9,
        "small client starved: finished at index {}",
        completion_index(4)
    );
}

#[test]
fn high_priority_tenant_overtakes_backlog() {
    let (mem, mut dev, vfs) = device_with_vfs(3);
    let (bulk_a, bulk_b, latency) = (vfs[0], vfs[1], vfs[2]);
    dev.set_priority(latency, 0).unwrap();
    let buf = mem.borrow_mut().alloc(256 * 1024, 4096);
    // Two bulk tenants queue a large backlog first.
    for i in 0..8u64 {
        for &vf in &[bulk_a, bulk_b] {
            dev.submit(
                SimTime::ZERO,
                vf,
                BlockRequest::new(
                    RequestId(2000 + i * 10 + vf.0 as u64),
                    BlockOp::Read,
                    Vlba((i * 64) % 960),
                    64,
                ),
                buf,
            );
        }
    }
    // The latency-sensitive tenant arrives after the backlog.
    dev.submit(
        SimTime::ZERO,
        latency,
        BlockRequest::new(RequestId(7), BlockOp::Read, Vlba(0), 1),
        buf,
    );
    let outs = dev.advance(HORIZON);
    let ids: Vec<u64> = outs
        .iter()
        .filter_map(|o| match o {
            NescOutput::Completion { id, .. } => Some(id.0),
            _ => None,
        })
        .collect();
    let pos = ids.iter().position(|&id| id == 7).unwrap();
    assert!(
        pos <= 2,
        "priority-0 request finished at completion index {pos}, after the bulk backlog"
    );
}

#[test]
fn priorities_do_not_break_isolation_or_accounting() {
    let (mem, mut dev, vfs) = device_with_vfs(2);
    dev.set_priority(vfs[0], 0).unwrap();
    dev.set_priority(vfs[1], 3).unwrap();
    let buf = mem.borrow_mut().alloc(4096, 4096);
    mem.borrow_mut().write(buf, &[0xAD; 1024]);
    dev.submit(
        SimTime::ZERO,
        vfs[1],
        BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(0), 1),
        buf,
    );
    dev.advance(HORIZON);
    // Low priority still gets served, on its own blocks.
    assert_eq!(dev.function_counters(vfs[1]), (1, 1));
    assert_eq!(
        dev.store().read_block(Plba(1024)).unwrap(),
        vec![0xAD; 1024]
    );
    assert!(!dev.store().is_written(Plba(0)), "VF0's range untouched");
}

mod mixed_streams {
    use nesc_hypervisor::{DiskKind, StreamSpec};
    use nesc_storage::BlockOp;
    use nesc_system_tests::small_system;

    #[test]
    fn concurrent_tenants_share_the_device_evenly() {
        let mut sys = small_system();
        let disks: Vec<_> = (0..4)
            .map(|i| {
                sys.quick_disk(DiskKind::NescDirect, &format!("mix{i}.img"), 8 << 20)
                    .disk
            })
            .collect();
        let specs: Vec<StreamSpec> = disks
            .iter()
            .map(|&disk| StreamSpec {
                disk,
                op: BlockOp::Read,
                start_offset: 0,
                req_bytes: 64 * 1024,
                count: 32,
            })
            .collect();
        let results = sys.run_mixed(&specs);
        let mbps: Vec<f64> = results.iter().map(|r| r.mbps).collect();
        let min = mbps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = mbps.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 1.15,
            "concurrent equal tenants should see near-equal throughput: {mbps:?}"
        );
        // Aggregate bounded by the one device (~800 MB/s read engine).
        let total: f64 = results.iter().map(|r| r.bytes as f64).sum::<f64>()
            / 1e6
            / results
                .iter()
                .map(|r| r.elapsed.as_secs_f64())
                .fold(0.0, f64::max);
        assert!(
            total < 810.0,
            "aggregate {total:.0} MB/s exceeds the device engine"
        );
    }

    #[test]
    fn mixed_read_write_streams_round_trip() {
        let mut sys = small_system();
        let d1 = sys.quick_disk(DiskKind::NescDirect, "w.img", 8 << 20).disk;
        let d2 = sys.quick_disk(DiskKind::NescDirect, "r.img", 8 << 20).disk;
        sys.write(d2, 0, &vec![0x44u8; 1 << 20]);
        let results = sys.run_mixed(&[
            StreamSpec {
                disk: d1,
                op: BlockOp::Write,
                start_offset: 0,
                req_bytes: 16 * 1024,
                count: 64,
            },
            StreamSpec {
                disk: d2,
                op: BlockOp::Read,
                start_offset: 0,
                req_bytes: 16 * 1024,
                count: 64,
            },
        ]);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.ops == 64 && r.mbps > 0.0));
        // The written stream's data is intact despite the interleaving.
        let mut buf = vec![0u8; 16 * 1024];
        sys.read(d1, 0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0x9A), "mixed-stream payload byte");
    }

    #[test]
    fn concurrency_slows_each_tenant_vs_running_alone() {
        let alone = {
            let mut sys = small_system();
            let d = sys
                .quick_disk(DiskKind::NescDirect, "solo.img", 8 << 20)
                .disk;
            sys.run_mixed(&[StreamSpec {
                disk: d,
                op: BlockOp::Read,
                start_offset: 0,
                req_bytes: 64 * 1024,
                count: 32,
            }])[0]
                .mbps
        };
        let mut sys = small_system();
        let disks: Vec<_> = (0..4)
            .map(|i| {
                sys.quick_disk(DiskKind::NescDirect, &format!("c{i}.img"), 8 << 20)
                    .disk
            })
            .collect();
        let specs: Vec<StreamSpec> = disks
            .iter()
            .map(|&disk| StreamSpec {
                disk,
                op: BlockOp::Read,
                start_offset: 0,
                req_bytes: 64 * 1024,
                count: 32,
            })
            .collect();
        let shared = sys.run_mixed(&specs)[0].mbps;
        assert!(
            shared < alone * 0.8,
            "sharing must cost throughput: alone {alone:.0}, shared {shared:.0} MB/s"
        );
    }
}
