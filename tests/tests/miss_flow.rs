//! The translation-miss protocol (paper Fig. 5): write misses, pruned
//! mappings, mid-request stalls, allocation failure, and the RewalkTree
//! resume — end to end through the hypervisor's interrupt handler.

use nesc_extent::Vlba;
use nesc_hypervisor::DiskKind;
use nesc_storage::BLOCK_SIZE;
use nesc_system_tests::{small_system, system_with_disk};

#[test]
fn write_miss_allocates_exactly_the_needed_range() {
    let mut sys = small_system();
    let vm = sys.create_vm();
    let img = sys.create_image("thin.img", 8 << 20, false).unwrap();
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));

    sys.write(disk, 100 * BLOCK_SIZE, &vec![1u8; 4 * BLOCK_SIZE as usize]);
    let tree = sys.host_fs().extent_tree(img).unwrap();
    assert_eq!(tree.mapped_blocks(), 4, "only the touched range allocates");
    assert!(tree.lookup(Vlba(100)).is_some());
    assert!(tree.lookup(Vlba(99)).is_none());
    assert!(tree.lookup(Vlba(104)).is_none());
}

#[test]
fn mid_request_miss_resumes_and_completes_whole_request() {
    // A request straddling mapped and unmapped space: blocks before the
    // miss transfer, the device stalls at the boundary, and after the
    // rewalk the remainder completes — one completion for the guest.
    let mut sys = small_system();
    let vm = sys.create_vm();
    let img = sys.create_image("straddle.img", 8 << 20, false).unwrap();
    // Preallocate only the first 2 blocks of the range we'll write.
    sys.host_fs_mut().allocate_range(img, Vlba(0), 2).unwrap();
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));

    let data: Vec<u8> = (0..8 * BLOCK_SIZE).map(|i| (i % 250) as u8).collect();
    sys.write(disk, 0, &data);
    assert_eq!(sys.device().stats().miss_interrupts, 1);

    let mut out = vec![0u8; data.len()];
    sys.read(disk, 0, &mut out);
    assert_eq!(out, data, "the straddling write must be complete and exact");
    assert_eq!(sys.host_fs().extent_tree(img).unwrap().mapped_blocks(), 8);
}

#[test]
fn consecutive_misses_each_resolve() {
    let mut sys = small_system();
    let vm = sys.create_vm();
    let img = sys.create_image("multi.img", 8 << 20, false).unwrap();
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    // Touch five disjoint unmapped regions.
    for i in 0..5u64 {
        sys.write(disk, i * (1 << 20), &vec![i as u8 + 1; 2048]);
    }
    assert_eq!(sys.device().stats().miss_interrupts, 5);
    for i in 0..5u64 {
        let mut out = vec![0u8; 2048];
        sys.read(disk, i * (1 << 20), &mut out);
        assert!(out.iter().all(|&b| b == i as u8 + 1), "region {i}");
    }
}

#[test]
fn miss_size_covers_the_unmapped_run() {
    // The device reports the full unmapped run in MissSize so the host can
    // allocate once, not once per block (paper §V: MissAddress/MissSize).
    let mut sys = small_system();
    let vm = sys.create_vm();
    let img = sys.create_image("runlen.img", 8 << 20, false).unwrap();
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    sys.write(disk, 0, &vec![7u8; 16 * BLOCK_SIZE as usize]);
    // One interrupt was enough for the whole 16-block run.
    assert_eq!(sys.device().stats().miss_interrupts, 1);
}

#[test]
fn quota_exhaustion_surfaces_as_write_failure() {
    // A device too small for the guest's appetite: the hypervisor cannot
    // allocate, signals the device, and the VF raises a write-failure
    // completion (paper §IV-C) — visible as a failed request, with the
    // system still alive afterwards.
    let mut sys = small_system();
    let vm = sys.create_vm();
    // Logical image far larger than the 64 MiB device.
    let img = sys.create_image("huge.img", 1 << 40, false).unwrap();
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    // Fill the physical device via another file.
    let hog = sys.create_image("hog.img", 60 << 20, true).unwrap();
    let _ = hog;

    // This write cannot be backed.
    let free = sys.host_fs().free_blocks();
    let want = (free + 10) * BLOCK_SIZE;
    assert!(want < 4 << 20, "test assumes a small remaining pool");
    let failed = sys.try_write(disk, 0, &vec![1u8; want as usize]);
    assert!(failed.is_err(), "write beyond free space must fail");

    // The system keeps working for well-behaved traffic.
    let (ok_vm, ok_disk) = (vm, disk);
    let _ = ok_vm;
    let small = vec![2u8; 1024];
    let lat = sys.write(ok_disk, 0, &small);
    assert!(lat.as_nanos() > 0);
}

#[test]
fn pruned_read_and_write_both_recover() {
    let mut sys = small_system();
    let vm = sys.create_vm();
    let img = sys.create_image("prune.img", 4 << 20, false).unwrap();
    let other = sys.create_image("interleave.img", 4 << 20, false).unwrap();
    // Interleave allocations so the tree is deep enough to prune.
    for b in 0..512u64 {
        sys.host_fs_mut().allocate_range(img, Vlba(b), 1).unwrap();
        sys.host_fs_mut().allocate_range(other, Vlba(b), 1).unwrap();
    }
    let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
    let data = vec![0x3Cu8; 8 * BLOCK_SIZE as usize];
    sys.write(disk, 0, &data);

    // Prune, then *read* — recovers via interrupt.
    assert!(sys.prune_image_mapping(disk, Vlba(0)));
    let mut out = vec![0u8; data.len()];
    sys.read(disk, 0, &mut out);
    assert_eq!(out, data);

    // Prune again, then *write* — also recovers.
    assert!(sys.prune_image_mapping(disk, Vlba(0)));
    let data2 = vec![0x4Du8; 8 * BLOCK_SIZE as usize];
    sys.write(disk, 0, &data2);
    sys.read(disk, 0, &mut out);
    assert_eq!(out, data2);
}

#[test]
fn virtio_path_never_raises_device_misses() {
    // Sparse images on the paravirtual path are the *host's* problem; the
    // device only ever sees PF traffic with real pLBAs.
    let (mut sys, _vm, disk) = system_with_disk(DiskKind::Virtio, 4 << 20);
    sys.write(disk, 1 << 20, &vec![9u8; 4096]);
    assert_eq!(sys.device().stats().miss_interrupts, 0);
}
