//! Regression guards for the paper's headline claims.
//!
//! The figure harnesses print these relations; this suite *asserts* them,
//! so a calibration or model change that silently breaks the reproduction
//! fails CI. Each check uses a scaled-down configuration of the
//! corresponding harness (same code paths, fewer samples).

use nesc_core::NescConfig;
use nesc_hypervisor::{DiskKind, GuestFilesystem, ProvisionedDisk, SoftwareCosts, System};
use nesc_storage::BlockOp;
use nesc_workloads::{Dd, DdMode, TenantIo, Workload};

fn prototype_system(kind: DiskKind) -> (System, nesc_hypervisor::VmId, nesc_hypervisor::DiskId) {
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 128 * 1024;
    let mut sys = System::new(cfg, SoftwareCosts::calibrated_with_trampoline());
    let ProvisionedDisk { vm, disk, .. } = sys.quick_disk(kind, "claim.img", 64 << 20);
    (sys, vm, disk)
}

/// Mean small-write latency (µs) on a path.
fn small_write_us(kind: DiskKind) -> f64 {
    let (mut sys, _vm, disk) = prototype_system(kind);
    Dd::new(BlockOp::Write, 512, 16, DdMode::Sync)
        .run(&mut TenantIo::attached(&mut sys, disk))
        .mean_latency_us()
}

/// Sync bandwidth (MB/s) at a block size on a path.
fn bandwidth(kind: DiskKind, op: BlockOp, bs: u64) -> f64 {
    let (mut sys, _vm, disk) = prototype_system(kind);
    Dd::new(op, bs, (4 << 20) / bs, DdMode::Sync)
        .run(&mut TenantIo::attached(&mut sys, disk))
        .mbps()
}

#[test]
fn fig9_claims_latency_orderings() {
    let nesc = small_write_us(DiskKind::NescDirect);
    let host = small_write_us(DiskKind::HostRaw);
    let virtio = small_write_us(DiskKind::Virtio);
    let emu = small_write_us(DiskKind::Emulated);
    // "similar to that obtained by the host"
    assert!(nesc / host < 1.5, "NeSC {nesc:.1}us vs host {host:.1}us");
    // "over 6x faster than virtio"
    assert!(
        virtio / nesc > 6.0,
        "virtio {virtio:.1}us / NeSC {nesc:.1}us"
    );
    // "over 20x faster than device emulation"
    assert!(emu / nesc > 20.0, "emulation {emu:.1}us / NeSC {nesc:.1}us");
}

#[test]
fn fig10_claims_bandwidth_orderings() {
    // Reads below 16 KB: NeSC > 2.5x virtio.
    let nesc_8k = bandwidth(DiskKind::NescDirect, BlockOp::Read, 8192);
    let virtio_8k = bandwidth(DiskKind::Virtio, BlockOp::Read, 8192);
    assert!(
        nesc_8k / virtio_8k > 2.5,
        "8KB read: NeSC {nesc_8k:.0} vs virtio {virtio_8k:.0} MB/s"
    );
    // Writes at 32 KB: NeSC > 2x virtio (paper peak ~3x) and > 4x emulation.
    let nesc_32k = bandwidth(DiskKind::NescDirect, BlockOp::Write, 32768);
    let virtio_32k = bandwidth(DiskKind::Virtio, BlockOp::Write, 32768);
    let emu_32k = bandwidth(DiskKind::Emulated, BlockOp::Write, 32768);
    assert!(
        nesc_32k / virtio_32k > 2.0,
        "{nesc_32k:.0} vs {virtio_32k:.0}"
    );
    assert!(nesc_32k / emu_32k > 4.0, "{nesc_32k:.0} vs {emu_32k:.0}");
    // NeSC read within ~15% of host at 32 KB ("10% slower").
    let host_32k = bandwidth(DiskKind::HostRaw, BlockOp::Read, 32768);
    let nesc_r32k = bandwidth(DiskKind::NescDirect, BlockOp::Read, 32768);
    assert!(
        nesc_r32k / host_32k > 0.85,
        "NeSC {nesc_r32k:.0} vs host {host_32k:.0} MB/s"
    );
    // Convergence: at 2 MB, virtio within 1.5x of NeSC.
    let nesc_2m = bandwidth(DiskKind::NescDirect, BlockOp::Read, 2 << 20);
    let virtio_2m = bandwidth(DiskKind::Virtio, BlockOp::Read, 2 << 20);
    assert!(
        nesc_2m / virtio_2m < 1.5,
        "2MB: NeSC {nesc_2m:.0} vs virtio {virtio_2m:.0} MB/s"
    );
}

#[test]
fn fig11_claims_fs_overheads() {
    let fs_write_us = |kind: DiskKind| {
        let (mut sys, vm, disk) = prototype_system(kind);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        let ino = gfs.create(&mut sys, "f").unwrap();
        let mut total = 0.0;
        for i in 0..8u64 {
            total += gfs
                .write(&mut sys, ino, i * 4096, &[3u8; 4096])
                .unwrap()
                .as_micros_f64();
        }
        total / 8.0
    };
    let raw_write_us = |kind: DiskKind| {
        let (mut sys, _vm, disk) = prototype_system(kind);
        Dd::new(BlockOp::Write, 4096, 8, DdMode::Sync)
            .run(&mut TenantIo::attached(&mut sys, disk))
            .mean_latency_us()
    };
    let nesc_overhead = fs_write_us(DiskKind::NescDirect) - raw_write_us(DiskKind::NescDirect);
    let virtio_overhead = fs_write_us(DiskKind::Virtio) - raw_write_us(DiskKind::Virtio);
    // "+40us" on NeSC (band: 20-80), "+170us" on virtio (band: 100-260).
    assert!(
        (20.0..80.0).contains(&nesc_overhead),
        "NeSC FS overhead {nesc_overhead:.0}us"
    );
    assert!(
        (100.0..260.0).contains(&virtio_overhead),
        "virtio FS overhead {virtio_overhead:.0}us"
    );
    // ">4x slower" with a little slack for the scaled-down config.
    assert!(
        virtio_overhead / nesc_overhead > 2.5,
        "amplification {:.1}x",
        virtio_overhead / nesc_overhead
    );
}

#[test]
fn fig2_claims_speedup_grows_with_device_bandwidth() {
    let run = |kind: DiskKind, throttle: u64| {
        let mut cfg = NescConfig::gen3();
        cfg.capacity_blocks = 256 * 1024;
        let mut sys = System::new(cfg, SoftwareCosts::calibrated());
        let disk = sys.quick_disk(kind, "f2.img", 64 << 20).disk;
        sys.device_mut().set_media_throttle(Some(throttle));
        sys.stream(disk, BlockOp::Write, 0, 16 << 20, 512 * 1024, 4)
            .mbps
    };
    let slow = run(DiskKind::NescDirect, 500_000_000) / run(DiskKind::Virtio, 500_000_000);
    let fast = run(DiskKind::NescDirect, 3_600_000_000) / run(DiskKind::Virtio, 3_600_000_000);
    assert!(
        (0.9..1.2).contains(&slow),
        "slow-device speedup {slow:.2} should be ~1"
    );
    assert!(
        fast > 1.6,
        "fast-device speedup {fast:.2} should approach ~2"
    );
    assert!(fast > slow, "speedup must grow with device bandwidth");
}

#[test]
fn abstract_claim_device_ceilings() {
    // "~800MB/s read bandwidth and almost 1GB/s write bandwidth": deep
    // pipelined streams must land just under the DMA-engine ceilings.
    let (mut sys, _vm, disk) = prototype_system(DiskKind::NescDirect);
    let read = sys
        .stream(disk, BlockOp::Read, 0, 16 << 20, 64 * 1024, 8)
        .mbps;
    assert!(
        (700.0..=801.0).contains(&read),
        "read ceiling {read:.0} MB/s"
    );
    let (mut sys, _vm, disk) = prototype_system(DiskKind::NescDirect);
    let write = sys
        .stream(disk, BlockOp::Write, 0, 16 << 20, 64 * 1024, 8)
        .mbps;
    assert!(
        (850.0..=1001.0).contains(&write),
        "write ceiling {write:.0} MB/s"
    );
}
