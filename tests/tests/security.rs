//! Security and isolation properties (the paper's raison d'être):
//! "NeSC enforces isolation by associating each virtual device with a
//! table that maps offsets in the virtual device to blocks on the physical
//! device" — a VF must be *unable* to name physical blocks outside its
//! file, under any access pattern.

use std::cell::RefCell;
use std::rc::Rc;

use nesc_core::{CompletionStatus, NescConfig, NescDevice, NescOutput};
use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};
use nesc_hypervisor::DiskKind;
use nesc_pcie::HostMemory;
use nesc_sim::{SimRng, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};
use nesc_system_tests::system_with_disk;
use proptest::prelude::*;

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

#[test]
fn vf_cannot_read_foreign_blocks_via_any_vlba() {
    // Poison the whole physical device, map a small window to a VF, and
    // verify every reachable vLBA returns either the window's data or
    // zeros (holes) — never the poison outside the window.
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 4096;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    for b in 0..4096 {
        dev.store_mut()
            .write_block(Plba(b), &vec![0xE1; BLOCK_SIZE as usize])
            .unwrap();
    }
    // The VF's file: blocks 100..110, overwritten with good data.
    for b in 100..110 {
        dev.store_mut()
            .write_block(Plba(b), &vec![0x60; BLOCK_SIZE as usize])
            .unwrap();
    }
    let tree: ExtentTree = [ExtentMapping::new(Vlba(5), Plba(100), 10)]
        .into_iter()
        .collect();
    let root = tree.serialize(&mut mem.borrow_mut());
    // Virtual device claims a large logical size: most of it is holes.
    let vf = dev.create_vf(root, 1024).unwrap();
    let buf = mem.borrow_mut().alloc(BLOCK_SIZE, 8);
    for vlba in 0..1024u64 {
        mem.borrow_mut().write(buf, &[0x77; BLOCK_SIZE as usize]);
        dev.submit(
            SimTime::from_nanos(vlba * 1_000_000),
            vf,
            BlockRequest::new(RequestId(vlba + 1), BlockOp::Read, Vlba(vlba), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        let got = mem.borrow().read_vec(buf, BLOCK_SIZE as usize);
        let expect: u8 = if (5..15).contains(&vlba) { 0x60 } else { 0x00 };
        assert!(
            got.iter().all(|&b| b == expect),
            "vLBA {vlba} leaked foreign bytes: {:#x}",
            got[0]
        );
    }
}

#[test]
fn requests_beyond_device_size_rejected_not_translated() {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 4096;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(0), 8)]
        .into_iter()
        .collect();
    let root = tree.serialize(&mut mem.borrow_mut());
    let vf = dev.create_vf(root, 8).unwrap();
    let buf = mem.borrow_mut().alloc(BLOCK_SIZE, 8);
    for (lba, count) in [(8u64, 1u64), (0, 9), (u64::MAX / BLOCK_SIZE, 1)] {
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(lba + count), BlockOp::Write, Vlba(lba), count),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(
            matches!(
                outs.last(),
                Some(NescOutput::Completion {
                    status: CompletionStatus::OutOfRange,
                    ..
                })
            ),
            "lba={lba} count={count} must be rejected"
        );
    }
}

#[test]
fn stale_btlb_entries_do_not_survive_tree_replacement() {
    // Dedup/migration scenario: the hypervisor remaps a VF's file and
    // replaces the tree; cached translations for the old physical blocks
    // must be gone.
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 4096;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    dev.store_mut()
        .write_block(Plba(100), &vec![0xAA; 1024])
        .unwrap();
    dev.store_mut()
        .write_block(Plba(200), &vec![0xBB; 1024])
        .unwrap();

    let tree_a: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(100), 1)]
        .into_iter()
        .collect();
    let root_a = tree_a.serialize(&mut mem.borrow_mut());
    let vf = dev.create_vf(root_a, 1).unwrap();
    let buf = mem.borrow_mut().alloc(1024, 8);

    dev.submit(
        SimTime::ZERO,
        vf,
        BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 1),
        buf,
    );
    dev.advance(HORIZON);
    assert_eq!(mem.borrow().read_vec(buf, 1024), vec![0xAA; 1024]);
    assert!(!dev.btlb().is_empty(), "translation was cached");

    // Hypervisor migrates the file to pLBA 200 and swaps the tree.
    let tree_b: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(200), 1)]
        .into_iter()
        .collect();
    let root_b = tree_b.serialize(&mut mem.borrow_mut());
    dev.set_tree_root(vf, root_b).unwrap();

    dev.submit(
        SimTime::from_nanos(1_000_000),
        vf,
        BlockRequest::new(RequestId(2), BlockOp::Read, Vlba(0), 1),
        buf,
    );
    dev.advance(HORIZON);
    assert_eq!(
        mem.borrow().read_vec(buf, 1024),
        vec![0xBB; 1024],
        "read served from a stale BTLB entry!"
    );
}

#[test]
fn hole_reads_never_leak_previous_tenant_data() {
    // A freed-and-reallocated virtual disk region must read as zeros for
    // the new tenant even though the physical blocks still hold the old
    // tenant's bytes.
    let (mut sys, _vm, disk_a) = system_with_disk(DiskKind::NescDirect, 1 << 20);
    let secret = vec![0xEC; 64 * 1024];
    sys.write(disk_a, 0, &secret);
    // New sparse disk for a different tenant.
    let vm_b = sys.create_vm();
    let img_b = sys.create_image("tenant_b.img", 1 << 20, false).unwrap();
    let disk_b = sys.attach(vm_b, DiskKind::NescDirect, Some(img_b));
    let mut out = vec![0xFFu8; 64 * 1024];
    sys.read(disk_b, 0, &mut out);
    assert!(
        out.iter().all(|&b| b == 0),
        "tenant B observed tenant A's residue"
    );
}

#[test]
fn guest_cannot_forge_pf_access() {
    // The PF is simply not reachable from a VM in the system model: disks
    // are attached to functions by the hypervisor, and the unforgeable BDF
    // attribution means a VF request can never carry PF semantics. The
    // closest a guest can get is issuing raw pLBAs — which its VF
    // translates as vLBAs, confined to its own file.
    let (mut sys, _vm, disk) = system_with_disk(DiskKind::NescDirect, 1 << 20);
    // Write "pLBA 0" through the VF: lands in the file, not on the
    // device's block 0 (which holds host filesystem metadata).
    sys.write(disk, 0, &vec![0xAB; 1024]);
    let image = sys.disk_image(disk).unwrap();
    let mapped = sys
        .host_fs()
        .extent_tree(image)
        .unwrap()
        .lookup(Vlba(0))
        .and_then(|e| e.translate(Vlba(0)))
        .expect("block 0 of the image is mapped");
    assert_ne!(mapped.0, 0, "image data never lands on metadata blocks");
    assert_eq!(
        sys.device().store().read_block(mapped).unwrap(),
        vec![0xAB; 1024]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hostile MMIO fuzzing: arbitrary register writes to arbitrary
    /// functions never panic the device and never let a VF escape its
    /// extent tree (the worst a guest can do with its own registers is
    /// break its own disk).
    #[test]
    fn prop_mmio_fuzz_never_breaks_confinement(
        writes in proptest::collection::vec((0u16..8, 0u64..0x40, any::<u64>()), 1..40),
        reads in proptest::collection::vec((0u16..8, 0u64..0x40), 1..20),
    ) {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 2048;
        let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(100), 8)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let vf = dev.create_vf(root, 8).unwrap();
        let mut t = SimTime::ZERO;
        for (i, &(func, offset, value)) in writes.iter().enumerate() {
            dev.mmio_write(
                nesc_core::FuncId(func),
                offset,
                value,
                t + SimTime::from_nanos(i as u64).saturating_since(SimTime::ZERO),
            );
        }
        for &(func, offset) in &reads {
            let _ = dev.mmio_read(nesc_core::FuncId(func), offset);
        }
        // The device still functions; a write through the (possibly
        // reconfigured) VF either succeeds within its tree or fails
        // cleanly — it never touches blocks outside the original extents
        // unless the guest pointed its own root at garbage, in which case
        // the walk reports corruption and nothing is written.
        let buf = mem.borrow_mut().alloc(1024, 8);
        mem.borrow_mut().write(buf, &[0x66; 1024]);
        t = SimTime::from_nanos(1_000_000);
        dev.submit(
            t,
            vf,
            BlockRequest::new(RequestId(9999), BlockOp::Write, Vlba(0), 1),
            buf,
        );
        let outs = dev.advance(SimTime::from_nanos(u64::MAX / 4));
        // Resolve any stall the fuzzed registers may have induced.
        if outs.iter().any(|o| !o.is_completion()) {
            dev.fail_stalled(vf, SimTime::from_nanos(2_000_000));
            dev.advance(SimTime::from_nanos(u64::MAX / 4));
        }
        for b in 0..2048u64 {
            if dev.store().is_written(Plba(b)) {
                prop_assert!(
                    (100..108).contains(&b),
                    "fuzzed MMIO let the VF write block {}",
                    b
                );
            }
        }
    }

    /// Randomized confinement: random extent layouts, random request
    /// streams — every byte a VF writes lands inside its own extent set.
    #[test]
    fn prop_vf_writes_confined_to_extents(
        layout in proptest::collection::vec((1u64..4, 1u64..6), 1..10),
        requests in proptest::collection::vec((0u64..64, 1u64..4), 1..20),
        seed in any::<u64>(),
    ) {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 4096;
        let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
        // Build a random, gappy layout.
        let mut tree = ExtentTree::new();
        let mut owned = std::collections::HashSet::new();
        let mut logical = 0u64;
        let mut physical = 50u64;
        for &(gap, len) in &layout {
            logical += gap;
            tree.insert(ExtentMapping::new(Vlba(logical), Plba(physical), len)).unwrap();
            for b in physical..physical + len {
                owned.insert(b);
            }
            logical += len;
            physical += len + 3;
        }
        let root = tree.serialize(&mut mem.borrow_mut());
        let vf = dev.create_vf(root, 64).unwrap();
        let buf = mem.borrow_mut().alloc(8 * BLOCK_SIZE, 8);
        mem.borrow_mut().write(buf, &vec![0xD4; 8 * BLOCK_SIZE as usize]);
        let mut rng = SimRng::seed(seed);
        let mut t = SimTime::ZERO;
        for (i, &(lba, count)) in requests.iter().enumerate() {
            if lba + count > 64 {
                continue;
            }
            dev.submit(
                t,
                vf,
                BlockRequest::new(RequestId(i as u64 + 1), BlockOp::Write, Vlba(lba), count),
                buf,
            );
            let outs = dev.advance(HORIZON);
            t = outs.iter().map(NescOutput::at).max().unwrap_or(t);
            // Resolve stalls by failing the allocation — the strictest
            // possible hypervisor; nothing new may be written.
            if outs.iter().any(|o| !o.is_completion()) {
                dev.fail_stalled(vf, t);
                let more = dev.advance(HORIZON);
                t = more.iter().map(NescOutput::at).max().unwrap_or(t);
            }
            let _ = rng.unit();
        }
        // No block outside the extent layout was ever written.
        for b in 0..4096u64 {
            if !owned.contains(&b) {
                prop_assert!(
                    !dev.store().is_written(Plba(b)),
                    "VF escaped its extents: wrote block {}",
                    b
                );
            }
        }
    }
}
