//! Scale-out scenario smoke: a reduced copy of the `scale_out` bench
//! mix (same 85/10/5 class proportions, same seed) must complete every
//! request, replay byte-identically from its seed, and keep per-class
//! QoS ordering sane — all fast enough to live in the tier-1 suite.

use nesc_sim::selfcheck::first_divergence;
use nesc_workloads::scenario::Scenario;
use nesc_workloads::{ScenarioSpec, TenantClass, TenantSpec};

/// A 60-VF copy of the datacenter mix: 51 steady + 6 bursty + 3 noisy.
fn reduced_mix(seed: u64) -> Scenario {
    Scenario::new(
        ScenarioSpec::new("scale_smoke")
            .seed(seed)
            .tenants(TenantSpec::steady(51).requests(14))
            .tenants(TenantSpec::bursty(6).requests(12))
            .tenants(TenantSpec::noisy(3).requests(24)),
    )
}

#[test]
fn reduced_datacenter_mix_completes_every_request() {
    let rep = reduced_mix(0xD47A_CE17).run().expect("valid spec");
    assert_eq!(rep.tenants.len(), 60);
    assert_eq!(rep.total_requests, 51 * 14 + 6 * 12 + 24 * 3);
    assert_eq!(
        rep.tenants.iter().map(|t| t.errors).sum::<u64>(),
        0,
        "preallocated images must not fault"
    );
    // Every tenant observed real latencies.
    assert!(rep.tenants.iter().all(|t| t.p99_ns > 0));
    assert!(rep.makespan.as_nanos() > 0);
    // Fairness metrics land in their domains.
    assert!(rep.jain_permille > 0 && rep.jain_permille <= 1000);
    assert_eq!(rep.lorenz_permille.len(), 11);
    assert_eq!(*rep.lorenz_permille.last().unwrap(), 1000);
}

#[test]
fn reduced_mix_is_seed_deterministic() {
    let (rep_a, dig_a) = reduced_mix(7).run_with_digest().expect("valid spec");
    let (rep_b, dig_b) = reduced_mix(7).run_with_digest().expect("valid spec");
    assert_eq!(dig_a.final_hash(), dig_b.final_hash());
    assert_eq!(first_divergence(&dig_a, &dig_b), None);
    assert_eq!(rep_a.digest, rep_b.digest);
    assert_eq!(rep_a.makespan, rep_b.makespan);

    let (_, dig_c) = reduced_mix(8).run_with_digest().expect("valid spec");
    assert!(
        first_divergence(&dig_a, &dig_c).is_some(),
        "different seeds must shuffle the tape"
    );
}

#[test]
fn every_class_is_represented_in_the_report() {
    let rep = reduced_mix(11).run().expect("valid spec");
    for class in [
        TenantClass::Steady,
        TenantClass::Bursty,
        TenantClass::NoisyNeighbor,
    ] {
        assert!(rep.class_count(class) > 0, "{} missing", class.label());
        assert!(
            rep.class_worst_p99_ns(class) > 0,
            "{} has no latency",
            class.label()
        );
    }
}

#[test]
fn empty_spec_is_a_typed_error_not_a_panic() {
    let err = Scenario::new(ScenarioSpec::new("empty"))
        .run()
        .expect_err("a spec without tenants cannot run");
    assert_eq!(err, nesc_workloads::ScenarioError::NoTenants);
    // A population of count 0 flattens to no tenants at all.
    let err = Scenario::new(ScenarioSpec::new("counted_out").tenants(TenantSpec::steady(0)))
        .run()
        .expect_err("zero-count populations leave an empty fleet");
    assert_eq!(err, nesc_workloads::ScenarioError::NoTenants);
}

#[test]
fn zero_rate_tenant_is_a_typed_error_not_a_panic() {
    let err = Scenario::new(
        ScenarioSpec::new("idle")
            .tenants(TenantSpec::steady(2))
            .tenants(TenantSpec::bursty(1).requests(0)),
    )
    .run()
    .expect_err("a tenant population that never sends cannot be compiled");
    assert_eq!(
        err,
        nesc_workloads::ScenarioError::EmptyTenantSpec { population: 1 }
    );
    assert!(err.to_string().contains("population 1"));
}

#[test]
fn undersized_disk_is_a_typed_error_not_a_panic() {
    let err = Scenario::new(
        ScenarioSpec::new("tiny").tenants(TenantSpec::steady(1).req_bytes((1 << 20) + 1024)),
    )
    .run()
    .expect_err("a disk smaller than one request cannot be compiled");
    assert!(matches!(
        err,
        nesc_workloads::ScenarioError::DiskTooSmall { population: 0, .. }
    ));
}
