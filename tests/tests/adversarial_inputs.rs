//! Adversarial guest-input regression harness.
//!
//! Seeded malformed-input generators drive every guest-facing decode
//! surface — NVMe submission entries, command-ring descriptors, virtio-blk
//! descriptor chains, and doorbell registers — and assert the device model
//! *classifies* each hostile input with a typed outcome instead of
//! panicking or letting an unproven value reach translation. This is the
//! dynamic twin of the static G1–G3 taint rules in `nesc-lint`: the linter
//! proves no unvalidated path exists, this harness proves the validators
//! that guard those paths fail closed.
//!
//! The taxonomy test at the bottom pins the exact outcome histogram for a
//! fixed seed, so a refactor that silently widens or narrows an accept set
//! (e.g. a validator that starts masking instead of rejecting) shows up as
//! a golden diff, not just a lack of crashes.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use nesc_core::regs::offsets;
use nesc_core::ring::{RingDescriptor, DESCRIPTOR_BYTES};
use nesc_core::{CompletionStatus, NescConfig, NescDevice, NescOutput};
use nesc_extent::{
    validate_chain_len, validate_count, validate_nlb, validate_ring_tail, validate_sector,
    validate_slba, ExtentMapping, ExtentTree, GuestFault, Plba, Untrusted, Vlba,
};
use nesc_nvme::{NvmeController, NvmeOpcode, NvmeStatus, SubmissionEntry};
use nesc_pcie::HostMemory;
use nesc_sim::{SimRng, SimTime};
use nesc_storage::{BlockOp, RequestId};
use nesc_virtio::queue::Descriptor;
use nesc_virtio::BlkRequest;

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

fn rand_bytes<const N: usize>(rng: &mut SimRng) -> [u8; N] {
    let mut b = [0u8; N];
    for byte in b.iter_mut() {
        *byte = rng.range(0, 256) as u8;
    }
    b
}

/// Random SQE bytes either fail to decode or decode into quarantined
/// fields; either way the controller-facing surface never panics.
#[test]
fn garbage_sqe_bytes_decode_or_reject() {
    let mut rng = SimRng::seed(0xA11_BAD);
    let mut decoded = 0usize;
    for _ in 0..512 {
        let buf: [u8; 64] = rand_bytes(&mut rng);
        if let Some(sqe) = SubmissionEntry::decode(&buf) {
            // Decoded entries re-encode without touching the raw values.
            assert_eq!(SubmissionEntry::decode(&sqe.encode()), Some(sqe));
            decoded += 1;
        }
    }
    // Opcode byte 0 admits 3 of 256 values, so most garbage is rejected
    // at the wire and a few survive into quarantine.
    assert!(decoded < 64, "opcode screen leaks too much: {decoded}");
    assert!(decoded > 0, "generator never produced a valid opcode");
}

fn nvme_setup() -> (NvmeController, u32, u16) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 8192;
    let mut ctrl = NvmeController::new(cfg, Rc::clone(&mem));
    let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(100), 64)]
        .into_iter()
        .collect();
    let root = tree.serialize(&mut mem.borrow_mut());
    let ns = ctrl.create_namespace(root, 64).unwrap();
    let qid = ctrl.create_queue_pair(8);
    (ctrl, ns, qid)
}

/// Boundary and hostile slba/nlb values all complete with a typed NVMe
/// status — the LBA validators reject exactly the ranges that would
/// overflow or escape the 64-block namespace.
#[test]
fn boundary_lba_ranges_yield_typed_statuses() {
    let (mut ctrl, ns, qid) = nvme_setup();
    let buf = 0x20_0000;
    let cases: &[(u64, u32, NvmeStatus)] = &[
        (0, 0, NvmeStatus::Success),               // first block
        (63, 0, NvmeStatus::Success),              // last block
        (63, 1, NvmeStatus::LbaOutOfRange),        // runs one past the end
        (64, 0, NvmeStatus::LbaOutOfRange),        // starts past the end
        (u64::MAX, 0, NvmeStatus::LbaOutOfRange),  // far out of range
        (u64::MAX, 1, NvmeStatus::LbaOutOfRange),  // wraps the address space
        (0, u32::MAX, NvmeStatus::LbaOutOfRange),  // nlb alone exceeds capacity
        (63, u32::MAX, NvmeStatus::LbaOutOfRange), // both hostile
    ];
    let mut t = SimTime::ZERO;
    for (i, &(slba, nlb, want)) in cases.iter().enumerate() {
        t += nesc_sim::SimDuration::from_micros(100);
        let sqe = SubmissionEntry::new(NvmeOpcode::Read, i as u16, ns, buf, Vlba(slba), nlb);
        let done = ctrl.submit_and_process(t, qid, &[sqe]).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0.status, want, "slba={slba} nlb={nlb}");
    }
    // A namespace that does not exist fails closed before any LBA math.
    t += nesc_sim::SimDuration::from_micros(100);
    let sqe = SubmissionEntry::new(NvmeOpcode::Read, 99, ns + 7, buf, Vlba(0), 0);
    let done = ctrl.submit_and_process(t, qid, &[sqe]).unwrap();
    assert_eq!(done[0].0.status, NvmeStatus::InvalidNamespace);
}

/// Random ring-descriptor bytes either fail the wire decode or, once
/// decoded, release through `to_request` with a typed fault on overflow.
#[test]
fn garbage_ring_descriptors_never_yield_unchecked_requests() {
    let mut rng = SimRng::seed(0xD00_DAD);
    for _ in 0..512 {
        let buf: [u8; DESCRIPTOR_BYTES as usize] = rand_bytes(&mut rng);
        let Some(d) = RingDescriptor::decode(&buf) else {
            continue;
        };
        match d.to_request() {
            Ok(req) => {
                // The released range is proven not to wrap.
                assert!(req.lba.checked_add_blocks(req.block_count).is_some());
            }
            Err(GuestFault::SlbaOutOfRange { .. }) | Err(GuestFault::ZeroLength) => {}
            Err(other) => panic!("unexpected fault class: {other}"),
        }
    }
}

fn device_with_ring() -> (Rc<RefCell<HostMemory>>, NescDevice, nesc_core::FuncId, u64) {
    let mem = Rc::new(RefCell::new(HostMemory::new()));
    let mut cfg = NescConfig::prototype();
    cfg.capacity_blocks = 64 * 1024;
    let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
    let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(0), 64)]
        .into_iter()
        .collect();
    let root = tree.serialize(&mut mem.borrow_mut());
    let vf = dev.create_vf(root, 64).unwrap();
    let ring_base = mem.borrow_mut().alloc(8 * DESCRIPTOR_BYTES, 4096);
    dev.mmio_write(vf, offsets::RING_BASE, ring_base, SimTime::ZERO);
    dev.mmio_write(vf, offsets::RING_ENTRIES, 8, SimTime::ZERO);
    (mem, dev, vf, ring_base)
}

/// Out-of-range doorbell values are rejected by the tail validator and
/// ignored; the ring stays live and a well-formed submission afterwards
/// still completes.
#[test]
fn hostile_doorbells_are_ignored_not_fatal() {
    let (mem, mut dev, vf, ring_base) = device_with_ring();
    // Hostile doorbells: at, past, and far past the 8-entry ring.
    for &tail in &[8u64, 9, 255, u32::MAX as u64, u64::MAX] {
        dev.mmio_write(vf, offsets::RING_TAIL, tail, SimTime::ZERO);
    }
    assert!(
        dev.advance(HORIZON)
            .iter()
            .all(|o| !matches!(o, NescOutput::Completion { .. })),
        "rejected doorbells must not consume descriptors"
    );
    // The device is not wedged: a sane descriptor + doorbell completes.
    let buf = mem.borrow_mut().alloc(2048, 4096);
    let d = RingDescriptor::new(BlockOp::Read, RequestId(7), Vlba(4), 2, buf);
    mem.borrow_mut().write(ring_base, &d.encode());
    dev.mmio_write(vf, offsets::RING_TAIL, 1, SimTime::ZERO);
    let ok = dev
        .advance(HORIZON)
        .iter()
        .filter(|o| {
            matches!(
                o,
                NescOutput::Completion {
                    status: CompletionStatus::Ok,
                    ..
                }
            )
        })
        .count();
    assert_eq!(ok, 1);
}

/// A descriptor whose lba+count wraps the virtual address space fails its
/// bounds proof in the device and surfaces as a typed `DeviceError`
/// completion — never an out-of-range `Plba` or a panic.
#[test]
fn wrapping_descriptor_completes_with_device_error() {
    let (mem, mut dev, vf, ring_base) = device_with_ring();
    let buf = mem.borrow_mut().alloc(2048, 4096);
    let d = RingDescriptor::new(BlockOp::Read, RequestId(1), Vlba(u64::MAX), 2, buf);
    mem.borrow_mut().write(ring_base, &d.encode());
    dev.mmio_write(vf, offsets::RING_TAIL, 1, SimTime::ZERO);
    let outs = dev.advance(HORIZON);
    let statuses: Vec<_> = outs
        .iter()
        .filter_map(|o| match o {
            NescOutput::Completion { id, status, .. } => Some((id.0, *status)),
            _ => None,
        })
        .collect();
    assert_eq!(statuses, vec![(1, CompletionStatus::DeviceError)]);
}

/// Randomly-shaped virtio descriptor chains parse into a request or a
/// typed `ParseError`; parsed sectors still have to pass the sector
/// validator before a backend may use them.
#[test]
fn malformed_virtio_chains_yield_typed_errors() {
    let mut rng = SimRng::seed(0xC0FFEE);
    let mut mem = HostMemory::new();
    let header = mem.alloc(16, 16);
    for _ in 0..512 {
        // Random header bytes: type code and sector.
        let hdr: [u8; 16] = rand_bytes(&mut rng);
        mem.write(header, &hdr);
        // Random chain shape: 0–3 descriptors after a sometimes-bogus head.
        let mut chain = Vec::new();
        let n = rng.range(0, 4);
        for i in 0..n {
            chain.push(Descriptor {
                addr: if i == 0 { header } else { 0x8000 + i * 0x1000 },
                len: [1u32, 8, 16, 512][rng.range(0, 4) as usize],
                device_writes: rng.chance(0.5),
            });
        }
        match BlkRequest::parse_chain(&mem, &chain) {
            Ok(req) => {
                // The sector is still quarantined: releasing it demands a
                // capacity proof, and hostile sectors fail it.
                match req.validated_sector(1 << 32) {
                    Ok(sector) => assert!(sector < 1 << 32),
                    Err(GuestFault::SectorOutOfRange { .. }) => {}
                    Err(other) => panic!("unexpected fault class: {other}"),
                }
            }
            Err(e) => {
                // Typed, displayable, and stable.
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

/// The validator layer enforces exactly its documented bounds.
#[test]
fn validators_enforce_documented_bounds() {
    // slba: accepts ranges inside capacity, rejects the first block out.
    assert_eq!(validate_slba(Untrusted::new(Vlba(60)), 4, 64), Ok(Vlba(60)));
    assert!(matches!(
        validate_slba(Untrusted::new(Vlba(61)), 4, 64),
        Err(GuestFault::SlbaOutOfRange { .. })
    ));
    // nlb: zero-based, so nlb = capacity-1 is the largest legal count.
    assert_eq!(validate_nlb(Untrusted::new(63), 64), Ok(64));
    assert!(matches!(
        validate_nlb(Untrusted::new(64), 64),
        Err(GuestFault::NlbOutOfRange { .. })
    ));
    // count: zero is never a request.
    assert!(matches!(
        validate_count(Untrusted::new(0)),
        Err(GuestFault::ZeroLength)
    ));
    // ring tail: strictly below the entry count.
    assert_eq!(validate_ring_tail(Untrusted::new(7), 8), Ok(7));
    assert!(matches!(
        validate_ring_tail(Untrusted::new(8), 8),
        Err(GuestFault::TailOutOfRange { .. })
    ));
    // sector: strictly below capacity.
    assert_eq!(validate_sector(Untrusted::new(99), 100), Ok(99));
    assert!(matches!(
        validate_sector(Untrusted::new(100), 100),
        Err(GuestFault::SectorOutOfRange { .. })
    ));
    // chain length: at most the ring's descriptor budget.
    assert_eq!(validate_chain_len(Untrusted::new(3), 3), Ok(3));
    assert!(matches!(
        validate_chain_len(Untrusted::new(4), 3),
        Err(GuestFault::ChainTooLong { .. })
    ));
}

/// Golden outcome taxonomy for a fixed hostile corpus: every input lands
/// in exactly one named bucket, and the histogram is pinned so accept-set
/// drift in any decoder or validator is loud.
#[test]
fn hostile_corpus_taxonomy_matches_golden() {
    let mut rng = SimRng::seed(0x5EED_6011);
    let mut tally: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut bump = |k: &'static str| *tally.entry(k).or_insert(0) += 1;

    for _ in 0..256 {
        let buf: [u8; 64] = rand_bytes(&mut rng);
        match SubmissionEntry::decode(&buf) {
            Some(_) => bump("sqe/quarantined"),
            None => bump("sqe/wire_reject"),
        }
    }
    for _ in 0..256 {
        let buf: [u8; DESCRIPTOR_BYTES as usize] = rand_bytes(&mut rng);
        match RingDescriptor::decode(&buf) {
            None => bump("ring/wire_reject"),
            Some(d) => match d.to_request() {
                Ok(_) => bump("ring/validated"),
                Err(GuestFault::SlbaOutOfRange { .. }) => bump("ring/fault_slba"),
                Err(GuestFault::ZeroLength) => bump("ring/fault_zero_len"),
                Err(_) => bump("ring/fault_other"),
            },
        }
    }
    // Crafted descriptors the random sweep is unlikely to produce: a range
    // that wraps the virtual address space, and a zero count smuggled past
    // the wire check via the trusted constructor.
    for d in [
        RingDescriptor::new(BlockOp::Read, RequestId(1), Vlba(u64::MAX), 2, 0x8000),
        RingDescriptor::new(BlockOp::Read, RequestId(2), Vlba(0), 0, 0x8000),
    ] {
        match d.to_request() {
            Ok(_) => bump("ring/validated"),
            Err(GuestFault::SlbaOutOfRange { .. }) => bump("ring/fault_slba"),
            Err(GuestFault::ZeroLength) => bump("ring/fault_zero_len"),
            Err(_) => bump("ring/fault_other"),
        }
    }
    for _ in 0..256 {
        let tail = rng.range(0, u32::MAX as u64 + 1) as u32;
        match validate_ring_tail(Untrusted::new(tail), 8) {
            Ok(_) => bump("doorbell/validated"),
            Err(GuestFault::TailOutOfRange { .. }) => bump("doorbell/fault_tail"),
            Err(_) => bump("doorbell/fault_other"),
        }
    }

    let golden: Vec<(&str, usize)> = vec![
        ("doorbell/fault_tail", 256),
        ("ring/fault_slba", 1),
        ("ring/fault_zero_len", 1),
        ("ring/validated", 2),
        ("ring/wire_reject", 254),
        ("sqe/quarantined", 3),
        ("sqe/wire_reject", 253),
    ];
    let got: Vec<(&str, usize)> = tally.into_iter().collect();
    assert_eq!(got, golden);
}
