//! Telemetry cross-checks: the perfmon sampler's windowed per-VF latency
//! gauges must agree with a reference recomputation from the raw span log.
//!
//! The sampler and the tracer observe the same requests through different
//! code paths — the sampler folds each completion into a per-window
//! histogram at `issue_once` time, the tracer records the request root
//! span. If windowing (half-open `[k·I, (k+1)·I)` keyed by completion
//! time), per-VF attribution, or the percentile math ever drift between
//! the two, these tests catch it on a randomized mixed multi-VF workload.

use nesc_hypervisor::prelude::*;
use nesc_sim::Histogram;
use proptest::prelude::*;

const INTERVAL_US: u64 = 25;
const VFS: usize = 3;
const DISK_BYTES: u64 = 4 << 20;

fn telemetry_system() -> (System, Vec<DiskId>) {
    let mut sys = SystemBuilder::new()
        .capacity_blocks((DISK_BYTES / 512) * (VFS as u64 + 1))
        .max_vfs(8)
        .tracing(true)
        .telemetry(TelemetryConfig::windowed(SimDuration::from_micros(INTERVAL_US)).capacity(4096))
        .build();
    let disks = (0..VFS)
        .map(|i| {
            sys.quick_disk(DiskKind::NescDirect, &format!("vf{i}.img"), DISK_BYTES)
                .disk
        })
        .collect();
    (sys, disks)
}

/// Per-(VF, window) latency histograms rebuilt from the request root
/// spans: a root span's `disk` attribute names the VF, its end time picks
/// the window, and its extent is the recorded latency.
fn reference_hists(spans: &[Span], disk: DiskId, windows: u64, interval_ns: u64) -> Vec<Histogram> {
    let mut hists: Vec<Histogram> = (0..windows).map(|_| Histogram::new()).collect();
    for s in spans
        .iter()
        .filter(|s| s.parent == SpanId::NONE && s.name == "request")
    {
        let d = s.attrs.iter().find(|(k, _)| *k == "disk").map(|&(_, v)| v);
        if d != Some(disk.0 as u64) {
            continue;
        }
        let w = s.end.as_nanos() / interval_ns;
        if w < windows {
            hists[w as usize].record((s.end - s.start).as_nanos());
        }
    }
    hists
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Windowed p50/p99 gauges equal the reference recomputation from the
    /// span log, for every VF and every closed window, on a random mix of
    /// reads and writes with random think time.
    #[test]
    fn prop_windowed_percentiles_match_span_log(
        ops in proptest::collection::vec(
            (0usize..VFS, 0usize..4usize, any::<bool>(), 1u64..30),
            8..40,
        )
    ) {
        let sizes = [2048u64, 4096, 8192, 16384];
        let (mut sys, disks) = telemetry_system();
        let mut buf = vec![0u8; 16384];
        for &(vf, szi, is_read, think_us) in &ops {
            let bytes = sizes[szi] as usize;
            let offset = szi as u64 * 16384;
            if is_read {
                sys.read(disks[vf], offset, &mut buf[..bytes]);
            } else {
                sys.write(disks[vf], offset, &buf[..bytes]);
            }
            sys.think(SimDuration::from_micros(think_us));
        }
        // Idle past the open window, then drop the partial tail.
        sys.think(SimDuration::from_micros(2 * INTERVAL_US));
        sys.telemetry_finish();

        let spans = sys.take_spans();
        let sampler = sys.telemetry().expect("telemetry enabled").sampler();
        let windows = sampler.closed_windows();
        let interval_ns = SimDuration::from_micros(INTERVAL_US).as_nanos();
        prop_assert!(windows > 0, "workload must close at least one window");

        for (vf, disk) in disks.iter().enumerate() {
            let hists = reference_hists(&spans, *disk, windows, interval_ns);
            for (p, series) in [(50.0, format!("hv.vf{vf}.p50_ns")), (99.0, format!("hv.vf{vf}.p99_ns"))] {
                let ts = sampler.series_by_name(&series).expect("per-VF series exists");
                let mut checked = 0u64;
                for (w, v) in ts.samples() {
                    prop_assert_eq!(
                        v,
                        hists[w as usize].percentile(p),
                        "vf{} p{} window {}", vf, p, w
                    );
                    checked += 1;
                }
                prop_assert_eq!(checked, windows, "gauge must cover every closed window");
            }
        }
    }
}

/// The same invariant holds for the windowed request counters: summed over
/// windows they equal the number of request root spans per VF (determinism
/// of attribution, not just of percentiles).
#[test]
fn windowed_request_counters_match_span_log() {
    let (mut sys, disks) = telemetry_system();
    let mut buf = vec![0u8; 8192];
    for i in 0..30u64 {
        let vf = (i % VFS as u64) as usize;
        if i % 3 == 0 {
            sys.read(disks[vf], (i % 8) * 8192, &mut buf);
        } else {
            sys.write(disks[vf], (i % 8) * 8192, &buf);
        }
        sys.think(SimDuration::from_micros(7));
    }
    sys.think(SimDuration::from_micros(2 * INTERVAL_US));
    sys.telemetry_finish();

    let spans = sys.take_spans();
    let sampler = sys.telemetry().expect("telemetry enabled").sampler();
    for (vf, disk) in disks.iter().enumerate() {
        let roots = spans
            .iter()
            .filter(|s| s.parent == SpanId::NONE && s.name == "request")
            .filter(|s| s.attrs.contains(&("disk", disk.0 as u64)))
            .count() as u64;
        let counted: u64 = sampler
            .series_by_name(&format!("hv.vf{vf}.requests"))
            .expect("per-VF series exists")
            .samples()
            .map(|(_, v)| v)
            .sum();
        assert_eq!(counted, roots, "vf{vf} request count");
    }
}
